#include "core/dynamic_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_pool.h"

namespace cod {
namespace {

// Registry handles for the rebuild counters, resolved once. IMPORTANT:
// resolve BEFORE taking mu_ — first use takes the registry lock, and the
// scrape path orders registry lock -> mu_ (callback gauges), so resolving
// under mu_ would invert it.
struct RebuildSites {
  Counter* attempts;
  Counter* failures;
  Counter* retries;
  Counter* published;
};

const RebuildSites& RebuildMetrics() {
  static const RebuildSites sites = [] {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    return RebuildSites{reg.GetCounter("cod_rebuild_attempts_total"),
                        reg.GetCounter("cod_rebuild_failures_total"),
                        reg.GetCounter("cod_rebuild_retries_total"),
                        reg.GetCounter("cod_epochs_published_total")};
  }();
  return sites;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

uint64_t DynamicCodService::EdgeKey(NodeId u, NodeId v, size_t n) {
  if (u > v) std::swap(u, v);
  return static_cast<uint64_t>(u) * n + v;
}

DynamicCodService::DynamicCodService(Graph initial_graph,
                                     AttributeTable attrs,
                                     const Options& options)
    : attrs_(std::make_shared<const AttributeTable>(std::move(attrs))),
      options_(options),
      num_nodes_(initial_graph.NumNodes()) {
  COD_CHECK_EQ(num_nodes_, attrs_->NumNodes());
  if (options_.async_rebuild) {
    COD_CHECK(options_.rebuild_pool != nullptr);
  }
  for (EdgeId e = 0; e < initial_graph.NumEdges(); ++e) {
    const auto [u, v] = initial_graph.Endpoints(e);
    edges_[EdgeKey(u, v, num_nodes_)] = initial_graph.Weight(e);
  }
  // The first epoch is always built synchronously; with no previous epoch
  // to fall back to, a failure here is fatal (arm rebuild failpoints only
  // after construction).
  COD_CHECK(Refresh().ok());

  // Register the scrape-time gauges only once the first epoch is live, so a
  // scrape can never observe a half-constructed service.
  epoch_gauge_.emplace("cod_service_epoch", [this] {
    return static_cast<double>(published_.load()->epoch);
  });
  epoch_age_gauge_.emplace("cod_service_epoch_age_seconds", [this] {
    return static_cast<double>(
               SteadyNowNs() -
               last_publish_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  });
  pending_gauge_.emplace("cod_service_pending_updates", [this] {
    return static_cast<double>(pending_updates());
  });
}

DynamicCodService::~DynamicCodService() { WaitForRebuild(); }

bool DynamicCodService::AddEdge(NodeId u, NodeId v, double weight) {
  COD_CHECK(u < num_nodes_);
  COD_CHECK(v < num_nodes_);
  if (u == v) return false;
  std::lock_guard<std::mutex> lock(mu_);
  edges_[EdgeKey(u, v, num_nodes_)] = weight;
  ++pending_updates_;
  return true;
}

bool DynamicCodService::RemoveEdge(NodeId u, NodeId v) {
  COD_CHECK(u < num_nodes_);
  COD_CHECK(v < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  if (edges_.erase(EdgeKey(u, v, num_nodes_)) == 0) return false;
  ++pending_updates_;
  return true;
}

size_t DynamicCodService::pending_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_updates_;
}

size_t DynamicCodService::NumEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

DynamicCodService::RebuildStats DynamicCodService::rebuild_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool DynamicCodService::BeginRebuild(EdgeMap* edges_out,
                                     uint64_t* build_index_out,
                                     size_t* captured_pending_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rebuild_in_flight_) return false;
  rebuild_in_flight_ = true;
  *edges_out = edges_;
  *build_index_out = builds_started_++;
  // The epoch being built absorbs everything pending as of this capture;
  // updates arriving during the build count against the NEXT epoch. A
  // failed build restores the captured count so drift can re-trigger.
  *captured_pending_out = pending_updates_;
  snapshot_edges_ = edges_.size();
  pending_updates_ = 0;
  return true;
}

Result<std::shared_ptr<const EngineCore>> DynamicCodService::BuildEpochCore(
    const EdgeMap& edges, uint64_t build_index) const {
  if (COD_FAILPOINT("dynamic_service/rebuild")) {
    return Status::IoError("failpoint dynamic_service/rebuild armed");
  }
  GraphBuilder builder(num_nodes_);
  for (const auto& [key, weight] : edges) {
    builder.AddEdge(static_cast<NodeId>(key / num_nodes_),
                    static_cast<NodeId>(key % num_nodes_), weight);
  }
  auto graph = std::make_shared<const Graph>(std::move(builder).Build());
  auto core = std::make_shared<EngineCore>(graph, attrs_, options_.engine);
  // Per-ticket deterministic sampling stream (failed tickets are consumed).
  Rng rng(options_.seed + build_index);
  const Budget budget{options_.rebuild_budget_seconds > 0.0
                          ? Deadline::After(options_.rebuild_budget_seconds)
                          : Deadline::Infinite()};
  COD_RETURN_IF_ERROR(core->TryBuildHimor(rng, budget));
  return std::shared_ptr<const EngineCore>(std::move(core));
}

void DynamicCodService::PublishEpoch(std::shared_ptr<const EngineCore> core) {
  const std::shared_ptr<const Epoch> prev = published_.load();
  auto next = std::make_shared<Epoch>();
  next->epoch = (prev == nullptr ? 0 : prev->epoch) + 1;
  next->core = std::move(core);
  published_.store(std::move(next));
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

Status DynamicCodService::Refresh() {
  const RebuildSites& rm = RebuildMetrics();  // resolve before taking mu_
  EdgeMap edges;
  uint64_t build_index = 0;
  size_t captured_pending = 0;
  // Wait out any background rebuild, then claim the build ticket ourselves.
  std::unique_lock<std::mutex> lock(mu_);
  rebuild_done_.wait(lock, [this] { return !rebuild_in_flight_; });
  rebuild_in_flight_ = true;
  edges = edges_;
  build_index = builds_started_++;
  captured_pending = pending_updates_;
  snapshot_edges_ = edges_.size();
  pending_updates_ = 0;
  ++stats_.attempts;
  rm.attempts->Increment();
  lock.unlock();

  Result<std::shared_ptr<const EngineCore>> built =
      BuildEpochCore(edges, build_index);
  if (built.ok()) {
    PublishEpoch(std::move(built).value());
  }

  // Notify under the lock: a waiter may destroy the service (and this cv)
  // as soon as it observes the flag cleared.
  lock.lock();
  if (built.ok()) {
    ++stats_.published;
    rm.published->Increment();
  } else {
    ++stats_.failures;
    rm.failures->Increment();
    stats_.last_error = built.status();
    // Restore the absorbed pending count so the drift threshold (or the
    // caller) can trigger another attempt; updates that arrived during the
    // failed build are already counted on top.
    pending_updates_ += captured_pending;
  }
  rebuild_in_flight_ = false;
  rebuild_done_.notify_all();
  lock.unlock();
  return built.status();
}

bool DynamicCodService::RefreshAsync() {
  COD_CHECK(options_.async_rebuild);
  EdgeMap edges;
  uint64_t build_index = 0;
  size_t captured_pending = 0;
  if (!BeginRebuild(&edges, &build_index, &captured_pending)) return false;
  options_.rebuild_pool->Submit(
      [this, edges = std::move(edges), build_index, captured_pending] {
        AsyncRebuildLoop(std::move(edges), build_index, captured_pending);
      });
  return true;
}

void DynamicCodService::AsyncRebuildLoop(EdgeMap edges, uint64_t build_index,
                                         size_t captured_pending) {
  // rebuild_in_flight_ stays true across every retry: RefreshAsync keeps
  // deduping, Refresh() and the destructor keep waiting, exactly as for one
  // long build.
  const RebuildSites& rm = RebuildMetrics();  // resolve before taking mu_
  uint32_t backoff_ms = options_.rebuild_backoff_initial_ms;
  for (uint32_t attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.attempts;
      rm.attempts->Increment();
    }
    Result<std::shared_ptr<const EngineCore>> built =
        BuildEpochCore(edges, build_index);
    if (built.ok()) {
      PublishEpoch(std::move(built).value());
      // Notify under the lock — see Refresh().
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.published;
      rm.published->Increment();
      rebuild_in_flight_ = false;
      rebuild_done_.notify_all();
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.failures;
    rm.failures->Increment();
    stats_.last_error = built.status();
    if (attempt >= options_.max_rebuild_retries) {
      // Give up: the last good epoch keeps serving; restoring the captured
      // pending count lets the drift threshold schedule a fresh ticket.
      pending_updates_ += captured_pending;
      rebuild_in_flight_ = false;
      rebuild_done_.notify_all();
      return;
    }
    ++stats_.retries;
    rm.retries->Increment();
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(options_.rebuild_backoff_max_ms, backoff_ms * 2);
  }
}

void DynamicCodService::WaitForRebuild() {
  std::unique_lock<std::mutex> lock(mu_);
  rebuild_done_.wait(lock, [this] { return !rebuild_in_flight_; });
}

DynamicCodService::EpochSnapshot DynamicCodService::Snapshot() const {
  const std::shared_ptr<const Epoch> epoch = published_.load();
  return EpochSnapshot{epoch->core, epoch->epoch};
}

void DynamicCodService::MaybeRefresh() {
  bool over_threshold = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double drift =
        snapshot_edges_ == 0
            ? (pending_updates_ > 0 ? 1.0 : 0.0)
            : static_cast<double>(pending_updates_) /
                  static_cast<double>(snapshot_edges_);
    over_threshold =
        pending_updates_ > 0 && drift > options_.rebuild_threshold;
  }
  if (!over_threshold) return;
  if (options_.async_rebuild) {
    RefreshAsync();  // keep serving the stale epoch; swap when ready
  } else {
    // A failed refresh keeps the old epoch and restores the pending count
    // (the next threshold crossing retries); the error is in
    // rebuild_stats().
    (void)Refresh();
  }
}

CodResult DynamicCodService::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                                       Rng& rng) {
  MaybeRefresh();
  const EpochSnapshot snap = Snapshot();
  QueryWorkspace ws(*snap.core, /*seed=*/0);
  ws.rng() = rng;
  const CodResult result = snap.core->QueryCodL(q, attr, k, ws);
  rng = ws.rng();
  return result;
}

CodResult DynamicCodService::QueryCodU(NodeId q, uint32_t k, Rng& rng) {
  MaybeRefresh();
  const EpochSnapshot snap = Snapshot();
  QueryWorkspace ws(*snap.core, /*seed=*/0);
  ws.rng() = rng;
  const CodResult result = snap.core->QueryCodU(q, k, ws);
  rng = ws.rng();
  return result;
}

std::vector<CodResult> DynamicCodService::QueryBatch(
    std::span<const QuerySpec> specs, ThreadPool& pool,
    uint64_t batch_seed) const {
  const EpochSnapshot snap = Snapshot();  // keeps the epoch alive throughout
  return RunQueryBatch(*snap.core, specs, pool, batch_seed);
}

std::vector<CodResult> DynamicCodService::QueryBatch(
    std::span<const QuerySpec> specs, ThreadPool& pool, uint64_t batch_seed,
    const BatchOptions& options) const {
  const EpochSnapshot snap = Snapshot();  // keeps the epoch alive throughout
  return RunQueryBatch(*snap.core, specs, pool, batch_seed, options);
}

}  // namespace cod
