#include "core/query_workspace.h"

#include "core/engine_core.h"

namespace cod {

QueryWorkspace::QueryWorkspace(const EngineCore& core, uint64_t seed)
    : core_(&core),
      evaluator_(core.model(), core.options().theta),
      rng_(seed) {}

void QueryWorkspace::Rebind(const EngineCore& core) {
  core_ = &core;
  evaluator_.Rebind(core.model(), core.options().theta);
}

}  // namespace cod
