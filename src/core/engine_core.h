// EngineCore: the immutable, shareable heart of the COD serving stack.
//
// Everything a query READS lives here — graph, attribute table, diffusion
// model, non-attributed base dendrogram, its LCA index, and the optional
// HIMOR index — and every query method is const. Everything a query WRITES
// (RR-sampling scratch, chain/eval buffers, the RNG) lives in a
// QueryWorkspace the caller passes in, so N threads answer queries
// concurrently against one core with one workspace each:
//
//     shared_ptr<const EngineCore> core = ...;   // built once per epoch
//     QueryWorkspace ws(*core, seed);            // one per thread, reusable
//     CodResult r = core->QueryCodL(q, attr, k, ws);
//
// The only mutable member is the optional CODR hierarchy cache: a bounded
// (LRU-evicting) per-attribute dendrogram cache with SINGLE-FLIGHT misses —
// concurrent first-touch queries for the same attribute elect one builder
// and the rest wait on its result instead of each running a redundant
// GlobalRecluster. Deterministic clustering means every waiter reads the
// same dendrogram a private build would have produced.
//
// Index-absent (degraded) mode: a core normally requires its HIMOR index
// for CODL / indexed-CODU. When an epoch's budgeted index build fails, the
// serving stack can still publish the core after MarkIndexAbsent(): CODL
// then answers through the compressed-evaluation fallback over the LORE
// chain (the Algorithm-3 slow path, extended with the global ancestors —
// i.e. the CODL- computation) and indexed CODU falls back to sampled CODU;
// both results are tagged degraded. Queries on a core that simply never
// built an index still fail fast (programming error), so the degraded mode
// is explicit, never accidental.
//
// Construction-time mutation: BuildHimor / BuildHimorParallel / LoadHimor
// are setup steps. They must happen-before the core is shared across
// threads (publish the shared_ptr only after setup), exactly like filling a
// const object before handing out references.
//
// Ownership: the owning constructor shares the graph/attribute table (the
// serving path — epochs share the attribute table, the graph dies with the
// core); the reference constructor aliases caller-owned data that must
// outlive the core (tests, benches, one-shot tools).

#ifndef COD_CORE_ENGINE_CORE_H_
#define COD_CORE_ENGINE_CORE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cod_chain.h"
#include "core/global_recluster.h"
#include "core/himor.h"
#include "core/lore.h"
#include "core/query_stats.h"
#include "graph/attributes.h"
#include "hierarchy/agglomerative.h"
#include "hierarchy/lca.h"
#include "influence/cascade_model.h"

namespace cod {

class QueryWorkspace;

struct EngineOptions {
  uint32_t k = 5;          // default top-k requirement
  uint32_t theta = 10;     // RR graphs per source node
  // The g_l transform (see core/global_recluster.h): how the query
  // attribute reshapes edge weights before (re)clustering.
  TransformOptions transform;
  DiffusionKind diffusion = DiffusionKind::kIndependentCascade;
  // Largest k the HIMOR index can answer (ranks >= this are not stored;
  // see HimorIndex::Build).
  uint32_t himor_max_rank = 16;
  // Reuse CODR hierarchies across queries with the same attribute (results
  // are identical; only timing changes — keep false for runtime benches).
  // The cache is mutex-guarded, so concurrent CODR queries are safe.
  bool cache_codr_hierarchies = false;
  // Cached dendrograms retained before LRU eviction kicks in (0 =
  // unbounded). A dendrogram costs O(n) nodes, so a high-cardinality
  // attribute sweep against an uncapped cache is a slow memory leak.
  size_t codr_cache_capacity = 64;
  // Component-scoped mode (the sharded serving tier, src/serving/): every
  // query is answered as if q's connected component were the whole graph.
  // Ancestor chains are truncated at the component subtree, LORE depth
  // weights are measured relative to it, and the HIMOR index is built with
  // per-source RNG streams and component-pure materialization
  // (HimorIndex::BuildScoped). The payoff: a query's answer is a pure
  // function of its component's subgraph — bit-identical no matter which
  // other components share the engine — which is what makes sharded
  // scatter/gather results independent of the shard count. On a connected
  // graph the truncation is a no-op (the component subtree IS the root).
  // Queries on singleton components short-circuit to a definitive
  // found=false. Off by default: mono serving keeps the historical
  // whole-graph chains (root included even across components).
  bool component_scoped = false;
  // Coverage-sketch index (influence/coverage_sketch.h): log2 of the
  // bottom-k signature capacity. 0 (default) disables the sketch entirely;
  // otherwise every HIMOR build co-builds a CoverageSketchIndex in the same
  // merge pass, enabling sketch_prune and sketch_rung below. Memory is
  // O(2^sketch_bits) u64 per materialized community plus the exact
  // threshold/top-count tables; 6-8 bits is plenty for pruning (the prune
  // bound uses only the EXACT tables, so sketch_bits sizes the approximate
  // rung's accuracy, not prune correctness).
  uint32_t sketch_bits = 0;
  // Answer-preserving pruning of exact HIMOR-schedule evaluations: levels
  // whose sketch thresholds prove rank >= k are skipped (sources unsampled,
  // occurrence lists unscanned) with bit-identical results — see
  // SketchPruneGuide in core/compressed_eval.h for the argument. Latency
  // knob only; excluded from the service fingerprint.
  bool sketch_prune = true;
  // Enables the CODSKETCH degradation rung (core/query_batch.h): a
  // zero-sampling, index-only approximate answer from the sketch tables,
  // always tagged degraded. Latency/availability knob only; excluded from
  // the service fingerprint.
  bool sketch_rung = true;
};

// The COD variants the serving stack can run (paper Sec. V-A), ordered by
// paper naming, not cost; see core/query_batch.h for the cost-ordered
// degradation ladder.
enum class CodVariant : uint8_t {
  kCodU,
  kCodR,
  kCodLMinus,
  kCodL,         // requires the core's HIMOR index
  kCodUIndexed,  // requires the core's HIMOR index
  // Approximate index-only answer from the coverage sketch (requires
  // sketch() and k <= sketch rank depth): the largest base-hierarchy
  // community whose sketch tables estimate q inside the top-k. Zero
  // sampling, O(dep(q)); ALWAYS tagged degraded — it is the bottom rung of
  // the degradation ladder, never an exact variant.
  kCodSketch
};

// Lower-case label value used for per-variant metrics (e.g.
// cod_query_latency_seconds{variant="codl"}).
const char* CodVariantName(CodVariant variant);

// One COD query, fully described: the canonical input of
// EngineCore::Query. The QueryCodX convenience overloads and the batch API
// (core/query_batch.h) all funnel into this.
struct QuerySpec {
  CodVariant variant = CodVariant::kCodL;
  NodeId node = kInvalidNode;
  // 0 means "use the engine default" (EngineOptions::k).
  uint32_t k = 0;
  // Query topic set; ignored by kCodU / kCodUIndexed. A single element uses
  // the single-attribute paths (including the CODR hierarchy cache).
  std::vector<AttributeId> attrs;
  // Per-query wall-clock budget in seconds, honored by the batch API only;
  // 0 means "use the batch default" (BatchOptions::default_budget_seconds).
  // Direct EngineCore::Query calls use the workspace budget instead.
  double budget_seconds = 0.0;
  // Intra-query parallel RR sampling: effective only when the workspace has
  // a sampling pool (QueryWorkspace::SetSamplingPool); on by default then.
  // Results are bit-identical either way — this is a latency knob only.
  bool parallel_sampling = true;
};

struct CodResult {
  bool found = false;
  std::vector<NodeId> members;  // the characteristic community C*(q)
  uint32_t rank = 0;            // q's estimated rank in C*(q) (0-based)
  size_t num_levels = 0;        // |H_l(q)| levels examined
  bool answered_from_index = false;  // CODL: resolved by HIMOR alone
  // Failure taxonomy (DESIGN.md): kOk is a COMPLETE answer (found may still
  // be false — "no characteristic community" is a definitive result);
  // kTimeout / kCancelled mean the workspace budget ran out first and
  // found/members/rank are unset. Direct EngineCore queries only ever
  // return the requested variant; the batch API's degradation ladder may
  // serve a cheaper one, recorded in variant_served with degraded = true.
  StatusCode code = StatusCode::kOk;
  bool degraded = false;
  CodVariant variant_served = CodVariant::kCodU;
  // Ladder rung the served answer came from (0 = the requested variant);
  // only the batch API's degradation ladder sets values > 0.
  uint8_t ladder_rung = 0;
  // Per-stage timings and sampling counts for THIS query (copied out of the
  // workspace accumulator by EngineCore::Query). Excluded from result
  // equality in tests — instrumentation, not an answer.
  QueryStats stats;
};

// A LORE-spliced chain plus provenance.
struct LoreChain {
  CodChain chain;
  CommunityId c_ell = kInvalidCommunity;
  size_t local_levels = 0;  // chain positions below (and incl.) C_ell
};

// Full instrumentation of one CODL query: which community LORE chose and
// why (the whole score profile), whether HIMOR answered, and the final
// result. For debugging, demos, and the hierarchy explorer.
struct QueryExplanation {
  LoreScores scores;
  uint32_t c_ell_size = 0;
  bool index_hit = false;
  CommunityId index_community = kInvalidCommunity;
  uint32_t index_rank = 0;
  CodResult result;

  // Human-readable multi-line report.
  std::string ToString(const Dendrogram& hierarchy) const;
};

// One hit of the reverse (promoter) search; see FindTopPromoters.
struct Promoter {
  NodeId node;
  CommunityId community;
  uint32_t size;
  uint32_t rank;
};

class EngineCore {
 public:
  // Owning constructor: the core keeps the graph and attribute table alive.
  EngineCore(std::shared_ptr<const Graph> graph,
             std::shared_ptr<const AttributeTable> attrs,
             const EngineOptions& options);
  // Aliasing constructor: `graph` and `attrs` must outlive the core.
  EngineCore(const Graph& graph, const AttributeTable& attrs,
             const EngineOptions& options);

  // Warm-restart factory (storage/epoch_snapshot.h): reassembles a core
  // from persisted parts, skipping the expensive AgglomerativeCluster pass —
  // the base hierarchy comes in prebuilt, and the HIMOR index (or the
  // explicit index-absent degraded marker) with it. The diffusion model and
  // LCA index are recomputed (both cheap and deterministic functions of the
  // graph / hierarchy), so a core restored from a snapshot answers queries
  // bit-identically to the one that wrote it. Fails with InvalidArgument
  // when the parts disagree (node counts, leaf counts) instead of
  // CHECK-crashing: snapshot bytes are hostile input.
  // `sketch` restores the coverage-sketch index persisted alongside the
  // HIMOR index (snapshot section kSketch); it requires `himor` to be
  // present and is validated against the graph/hierarchy shape. A missing
  // sketch is never an error — the core just serves without pruning or the
  // sketch rung (sketch loss degrades latency, not answers).
  static Result<std::unique_ptr<EngineCore>> FromPrebuilt(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const AttributeTable> attrs,
      const EngineOptions& options, Dendrogram base_hierarchy,
      std::optional<HimorIndex> himor,
      std::optional<CoverageSketchIndex> sketch, bool index_absent_degraded);

  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  const Graph& graph() const { return *graph_; }
  const AttributeTable& attributes() const { return *attrs_; }
  const DiffusionModel& model() const { return model_; }
  const Dendrogram& base_hierarchy() const { return base_; }
  const LcaIndex& base_lca() const { return lca_; }
  const EngineOptions& options() const { return options_; }

  // ---- Chain builders (exposed for benches and tests). ----
  CodChain BuildCoduChain(NodeId q) const;
  CodChain BuildCodrChain(NodeId q, AttributeId attr) const;
  LoreChain BuildCodlChain(NodeId q, AttributeId attr) const;
  LoreChain BuildCodlChain(NodeId q,
                           std::span<const AttributeId> attrs) const;

  // ---- The canonical query entry point. Dispatches on spec.variant,
  // resolves spec.k == 0 to the engine default, resets and fills the
  // workspace's QueryStats (copied onto the result), and records
  // per-variant latency / outcome / stage metrics in the process-wide
  // MetricsRegistry — the ONE place queries are tagged. spec.budget_seconds
  // is ignored here (that field belongs to the batch API); the effective
  // budget is ws.budget().
  //
  // Budget discipline: every variant honors ws.budget() — the LORE edge
  // scan, RR sampling, and the agglomerative (re)clustering passes all poll
  // it and unwind with result.code set to kTimeout / kCancelled.
  CodResult Query(const QuerySpec& spec, QueryWorkspace& ws) const;

  // ---- Query variants: thin wrappers over Query(). Each attributed
  // variant also accepts a topic SET (an edge counts as query-attributed
  // when both endpoints carry at least one of the attributes). All use `ws`
  // for scratch and randomness; the workspace must be bound to this core
  // (QueryWorkspace ctor / Rebind). ----
  CodResult QueryCodU(NodeId q, uint32_t k, QueryWorkspace& ws) const;
  CodResult QueryCodR(NodeId q, AttributeId attr, uint32_t k,
                      QueryWorkspace& ws) const;
  CodResult QueryCodR(NodeId q, std::span<const AttributeId> attrs,
                      uint32_t k, QueryWorkspace& ws) const;
  CodResult QueryCodLMinus(NodeId q, AttributeId attr, uint32_t k,
                           QueryWorkspace& ws) const;
  CodResult QueryCodLMinus(NodeId q, std::span<const AttributeId> attrs,
                           uint32_t k, QueryWorkspace& ws) const;
  // Index-only CODU: the largest base-hierarchy community where q is top-k,
  // answered entirely from HIMOR in O(dep(q)) — no sampling at query time.
  // Requires himor() and k <= options().himor_max_rank. This workspace-free
  // form bypasses Query() and records no metrics or stats; route through
  // Query({kCodUIndexed, ...}, ws) to get both.
  CodResult QueryCodUIndexed(NodeId q, uint32_t k) const;

  // Require himor() (BuildHimor / LoadHimor during setup) — unless the core
  // was published index-absent (MarkIndexAbsent), in which case CODL serves
  // the CODL- computation tagged degraded.
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                      QueryWorkspace& ws) const;
  CodResult QueryCodL(NodeId q, std::span<const AttributeId> attrs,
                      uint32_t k, QueryWorkspace& ws) const;

  QueryExplanation ExplainCodL(NodeId q, AttributeId attr, uint32_t k,
                               QueryWorkspace& ws) const;

  // Reverse (promoter) search: which attribute holders have the LARGEST
  // characteristic communities in the base hierarchy? Answered entirely
  // from HIMOR (O(sum depth) scan). Requires himor().
  std::vector<Promoter> FindTopPromoters(AttributeId attr, size_t count,
                                         uint32_t k) const;

  // Evaluates an externally built chain with the workspace's evaluator.
  CodResult EvaluateChain(const CodChain& chain, NodeId q, uint32_t k,
                          QueryWorkspace& ws) const;

  // ---- Setup-time mutators: must happen-before sharing the core. ----
  void BuildHimor(Rng& rng);
  // Multi-threaded variant; the result depends on `seed` only, never on the
  // thread count (see HimorIndex::BuildParallel).
  void BuildHimorParallel(uint64_t seed, size_t num_threads = 0);
  // Fallible forms for the serving stack: a build that runs out of budget
  // (or hits the "himor/build" failpoint) returns the error and leaves any
  // previously built index untouched.
  Status TryBuildHimor(Rng& rng, const Budget& budget);
  Status TryBuildHimorParallel(uint64_t seed, size_t num_threads,
                               const Budget& budget);
  // Incremental build on the counter-seeded per-sample schedule (see
  // HimorIndex::BuildDelta): with a valid `prev` cache plus the dirty-vertex
  // bitmap, only samples touching dirty vertices are redrawn; with
  // prev == nullptr this IS the delta-mode cold build. `next` (required)
  // receives the carry state for the following epoch; on success the build
  // consumes prev's bucket-row carry (moved into next). Honors
  // options_.component_scoped like the other builders.
  Status TryBuildHimorDelta(uint64_t seed, const Budget& budget,
                            const std::vector<char>* dirty,
                            HimorSampleCache* prev,
                            HimorSampleCache* next, HimorDeltaStats* stats);
  Status LoadHimor(const std::string& path);
  // Declares that this core intentionally serves WITHOUT a HIMOR index (the
  // budgeted build failed and the epoch is being published degraded). CODL
  // then answers via the CODL- computation (local recluster + spliced
  // global ancestors + compressed evaluation) and kCodUIndexed via sampled
  // CODU, both tagged degraded. Setup-time mutator, like BuildHimor.
  void MarkIndexAbsent();

  Status SaveHimor(const std::string& path) const;
  const HimorIndex* himor() const {
    return himor_.has_value() ? &*himor_ : nullptr;
  }
  // Coverage-sketch index co-built with the HIMOR index when
  // options().sketch_bits > 0 (null otherwise, including when the
  // "influence/sketch_build" failpoint dropped it — the index itself still
  // builds). Non-null implies himor() is non-null.
  const CoverageSketchIndex* sketch() const {
    return sketch_.has_value() ? &*sketch_ : nullptr;
  }
  // True when the HIMOR index exists; false only on cores published in the
  // explicit index-absent degraded mode (see MarkIndexAbsent).
  bool index_present() const { return himor_.has_value(); }
  bool index_absent_degraded() const { return index_absent_degraded_; }

  // Test/ops hook: cached CODR dendrograms currently resident.
  size_t CodrCacheSize() const;

 private:
  // Constructor behind FromPrebuilt: adopts the hierarchy instead of
  // clustering. The tag keeps it out of overload resolution.
  struct PrebuiltTag {};
  EngineCore(PrebuiltTag, std::shared_ptr<const Graph> graph,
             std::shared_ptr<const AttributeTable> attrs,
             const EngineOptions& options, Dendrogram base_hierarchy);

  // The LORE splice of BuildCodlChain after the scores are known; shared by
  // the budgeted query paths, which compute scores themselves. The local
  // reclustering pass polls `budget` and unwinds with kTimeout/kCancelled.
  Result<LoreChain> BuildCodlChainFromScores(
      const LoreScores& scores, NodeId q, std::span<const AttributeId> attrs,
      const Budget& budget) const;

  // ---- Variant implementations behind Query()'s dispatch. These fill
  // ws.stats() stage-by-stage; Query() owns the metrics tagging. ----
  CodResult DoCodU(NodeId q, uint32_t k, QueryWorkspace& ws) const;
  CodResult DoCodRSingle(NodeId q, AttributeId attr, uint32_t k,
                         QueryWorkspace& ws) const;
  CodResult DoCodRSpan(NodeId q, std::span<const AttributeId> attrs,
                       uint32_t k, QueryWorkspace& ws) const;
  CodResult DoCodLMinus(NodeId q, std::span<const AttributeId> attrs,
                        uint32_t k, QueryWorkspace& ws) const;
  CodResult DoCodL(NodeId q, std::span<const AttributeId> attrs, uint32_t k,
                   QueryWorkspace& ws) const;
  CodResult DoCodUIndexed(NodeId q, uint32_t k) const;
  CodResult DoCodSketch(NodeId q, uint32_t k) const;

  // The CODR cache lookup-or-build: returns the attribute's dendrogram,
  // electing this thread as the single-flight builder on a cold miss (the
  // "engine_core/codr_cache" failpoint fires inside the builder, before the
  // GlobalRecluster). Waiters honor `budget`'s deadline while the builder
  // runs. `*served_from_cache` reports whether the dendrogram was obtained
  // without this thread building it.
  Result<std::shared_ptr<const Dendrogram>> CodrDendrogramFor(
      AttributeId attr, const Budget& budget, bool* served_from_cache) const;

  // Component-scoped helpers (no-ops unless options_.component_scoped).
  // ScopeTopFor: the topmost ancestor of q in `dendrogram` that still fits
  // inside q's connected component — the component subtree root (== the
  // dendrogram root on connected graphs). Returns kInvalidCommunity when
  // scoping is off, i.e. "chain runs to the root" for every caller.
  CommunityId ScopeTopFor(const Dendrogram& dendrogram, NodeId q) const;
  // True when q is alone in its component: no edges, no influence, no
  // community — Query answers kOk/found=false without touching evaluators.
  bool IsSingletonComponent(NodeId q) const {
    return options_.component_scoped && comp_size_of_node_[q] <= 1;
  }
  // Commits a freshly co-built coverage sketch (possibly empty — failpoint
  // or sketch_bits == 0) after a SUCCESSFUL index build, observing its
  // build-stage histograms. Failed builds never reach this, keeping the
  // previous index+sketch pair intact together.
  void AdoptSketch(std::optional<CoverageSketchIndex> sketch);

  // Drops least-recently-used READY entries until the cache fits
  // options_.codr_cache_capacity; in-flight builds are never evicted.
  // Requires codr_mu_ held.
  void EvictCodrOverflowLocked() const;

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const AttributeTable> attrs_;
  EngineOptions options_;
  DiffusionModel model_;
  Dendrogram base_;
  LcaIndex lca_;
  std::optional<HimorIndex> himor_;
  std::optional<CoverageSketchIndex> sketch_;
  bool index_absent_degraded_ = false;
  // Per-node connected-component sizes, filled only when
  // options_.component_scoped (empty otherwise).
  std::vector<uint32_t> comp_size_of_node_;

  // CODR per-attribute hierarchy cache (options_.cache_codr_hierarchies):
  // bounded LRU, single-flight misses. `dendrogram == nullptr` marks an
  // in-flight build; waiters sleep on codr_cv_ (one cv for the whole cache —
  // builds are rare and the thundering herd is exactly the set of waiters
  // that need to wake). shared_ptr values let readers drop the lock before
  // walking a dendrogram, and keep an evicted-but-in-use dendrogram alive.
  struct CodrCacheEntry {
    std::shared_ptr<const Dendrogram> dendrogram;  // null while building
    uint64_t last_used = 0;                        // LRU tick
  };
  mutable std::mutex codr_mu_;
  mutable std::condition_variable codr_cv_;
  mutable std::unordered_map<AttributeId, CodrCacheEntry> codr_cache_;
  mutable uint64_t codr_lru_tick_ = 0;
};

}  // namespace cod

#endif  // COD_CORE_ENGINE_CORE_H_
