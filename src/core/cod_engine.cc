#include "core/cod_engine.h"

#include <utility>

#include "common/thread_pool.h"

namespace cod {

CodEngine::CodEngine(const Graph& graph, const AttributeTable& attrs,
                     const EngineOptions& options)
    : core_(std::make_shared<EngineCore>(graph, attrs, options)),
      ws_(*core_, /*seed=*/0) {}

CodEngine::CodEngine(std::shared_ptr<const Graph> graph,
                     std::shared_ptr<const AttributeTable> attrs,
                     const EngineOptions& options)
    : core_(std::make_shared<EngineCore>(std::move(graph), std::move(attrs),
                                         options)),
      ws_(*core_, /*seed=*/0) {}

// Runs `fn(ws_)` with the internal workspace driven by the caller's RNG:
// the stream is copied in and the advanced state copied back, so legacy
// callers observe exactly the draws the query consumed.
template <typename Fn>
CodResult CodEngine::WithCallerRng(Rng& rng, Fn&& fn) {
  ws_.rng() = rng;
  CodResult result = fn(ws_);
  rng = ws_.rng();
  return result;
}

// Definitions of the deprecated Rng-form forwarders (some compilers warn on
// out-of-line definitions of [[deprecated]] members).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

CodResult CodEngine::QueryCodU(NodeId q, uint32_t k, Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodU(q, k, ws);
  });
}

CodResult CodEngine::QueryCodR(NodeId q, AttributeId attr, uint32_t k,
                               Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodR(q, attr, k, ws);
  });
}

CodResult CodEngine::QueryCodR(NodeId q, std::span<const AttributeId> attrs,
                               uint32_t k, Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodR(q, attrs, k, ws);
  });
}

CodResult CodEngine::QueryCodLMinus(NodeId q, AttributeId attr, uint32_t k,
                                    Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodLMinus(q, attr, k, ws);
  });
}

CodResult CodEngine::QueryCodLMinus(NodeId q,
                                    std::span<const AttributeId> attrs,
                                    uint32_t k, Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodLMinus(q, attrs, k, ws);
  });
}

CodResult CodEngine::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                               Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodL(q, attr, k, ws);
  });
}

CodResult CodEngine::QueryCodL(NodeId q, std::span<const AttributeId> attrs,
                               uint32_t k, Rng& rng) {
  return WithCallerRng(rng, [&](QueryWorkspace& ws) {
    return core_->QueryCodL(q, attrs, k, ws);
  });
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

CodEngine::QueryExplanation CodEngine::ExplainCodL(NodeId q, AttributeId attr,
                                                   uint32_t k, Rng& rng) {
  ws_.rng() = rng;
  QueryExplanation explanation = core_->ExplainCodL(q, attr, k, ws_);
  rng = ws_.rng();
  return explanation;
}

std::vector<CodResult> CodEngine::QueryBatch(std::span<const QuerySpec> specs,
                                             ThreadPool& pool,
                                             uint64_t batch_seed) const {
  return RunQueryBatch(*core_, specs, pool, batch_seed);
}

std::vector<CodResult> CodEngine::QueryBatch(std::span<const QuerySpec> specs,
                                             ThreadPool& pool,
                                             uint64_t batch_seed,
                                             const BatchOptions& options) const {
  return RunQueryBatch(*core_, specs, pool, batch_seed, options);
}

}  // namespace cod
