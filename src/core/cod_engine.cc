#include "core/cod_engine.h"

#include <utility>

#include "common/task_scheduler.h"

namespace cod {

CodEngine::CodEngine(const Graph& graph, const AttributeTable& attrs,
                     const EngineOptions& options)
    : core_(std::make_shared<EngineCore>(graph, attrs, options)),
      ws_(*core_, /*seed=*/0) {}

CodEngine::CodEngine(std::shared_ptr<const Graph> graph,
                     std::shared_ptr<const AttributeTable> attrs,
                     const EngineOptions& options)
    : core_(std::make_shared<EngineCore>(std::move(graph), std::move(attrs),
                                         options)),
      ws_(*core_, /*seed=*/0) {}

CodEngine::QueryExplanation CodEngine::ExplainCodL(NodeId q, AttributeId attr,
                                                   uint32_t k, Rng& rng) {
  ws_.rng() = rng;
  QueryExplanation explanation = core_->ExplainCodL(q, attr, k, ws_);
  rng = ws_.rng();
  return explanation;
}

std::vector<CodResult> CodEngine::QueryBatch(std::span<const QuerySpec> specs,
                                             TaskScheduler& scheduler,
                                             uint64_t batch_seed) const {
  return RunQueryBatch(*core_, specs, scheduler, batch_seed);
}

std::vector<CodResult> CodEngine::QueryBatch(std::span<const QuerySpec> specs,
                                             TaskScheduler& scheduler,
                                             uint64_t batch_seed,
                                             const BatchOptions& options) const {
  return RunQueryBatch(*core_, specs, scheduler, batch_seed, options);
}

}  // namespace cod
