// Concurrent batch-query API: fan a COD query workload across a ThreadPool.
//
// Determinism contract: query i of a batch always runs with
// Rng(BatchQuerySeed(batch_seed, i)) in a freshly reseeded per-thread
// workspace, so the result vector is a pure function of
// (core, specs, batch_seed) — bit-identical for every pool size, including
// a single thread. Workers get contiguous spec ranges and one reusable
// QueryWorkspace each; nothing is shared mutably across workers except the
// pre-sized result slots (one writer per slot).
//
// Do not call RunQueryBatch from inside a task running on the same pool —
// the caller blocks until its chunk tasks finish, which deadlocks once the
// pool is saturated with blocked callers.

#ifndef COD_CORE_QUERY_BATCH_H_
#define COD_CORE_QUERY_BATCH_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "core/engine_core.h"

namespace cod {

class ThreadPool;
class QueryWorkspace;

enum class CodVariant : uint8_t {
  kCodU,
  kCodR,
  kCodLMinus,
  kCodL,        // requires the core's HIMOR index
  kCodUIndexed  // requires the core's HIMOR index
};

struct QuerySpec {
  CodVariant variant = CodVariant::kCodL;
  NodeId node = kInvalidNode;
  // 0 means "use the engine default" (EngineOptions::k).
  uint32_t k = 0;
  // Query topic set; ignored by kCodU / kCodUIndexed. A single element uses
  // the single-attribute paths (including the CODR hierarchy cache).
  std::vector<AttributeId> attrs;
};

// The RNG seed batch query `index` runs with; exposed so tests and callers
// can reproduce any single query of a batch in isolation.
inline uint64_t BatchQuerySeed(uint64_t batch_seed, size_t index) {
  uint64_t state =
      batch_seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1);
  return SplitMix64(state);
}

// Runs one spec against `core` using `ws` (the workspace's current RNG
// stream; RunQueryBatch reseeds it per query). Exposed for sequential
// re-verification of batch answers.
CodResult RunQuerySpec(const EngineCore& core, const QuerySpec& spec,
                       QueryWorkspace& ws);

// Fans `specs` across `pool` and blocks until every result is filled.
// Thread-safe: concurrent batches may share one pool (each batch waits on
// its own completion latch, not on pool idleness).
std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     ThreadPool& pool, uint64_t batch_seed);

}  // namespace cod

#endif  // COD_CORE_QUERY_BATCH_H_
