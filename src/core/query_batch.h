// Concurrent batch-query API: fan a COD query workload across a ThreadPool.
//
// Determinism contract: query i of a batch always runs with
// Rng(BatchQuerySeed(batch_seed, i)) in a freshly reseeded per-thread
// workspace, so the result vector is a pure function of
// (core, specs, batch_seed, options) — bit-identical for every pool size,
// including a single thread. Workers get contiguous spec ranges and one
// reusable QueryWorkspace each; nothing is shared mutably across workers
// except the pre-sized result slots (one writer per slot).
//
// Budgets and graceful degradation (BatchOptions): each query runs under a
// deadline (per-spec override, batch default, and a batch-wide deadline —
// whichever is earliest) plus an optional cancel token. When a rung of work
// times out and degradation is allowed, the query retries on the next rung
// of a CHEAPER variant ladder (see DegradationLadder in the .cc / DESIGN.md)
// with the SAME per-query seed, so a degraded answer equals a direct query
// of the served variant. Answers record code / degraded / variant_served.
// Determinism caveat: budget expiry itself is a wall-clock event, so results
// are bit-identical across thread counts only for a fixed sequence of budget
// outcomes — guaranteed for unlimited budgets and for already-expired
// budgets (<= ~1ns, which deterministically fail their first poll), the
// cases the tests pin down.
//
// Do not call RunQueryBatch from inside a task running on the same pool —
// the caller blocks until its chunk tasks finish, which deadlocks once the
// pool is saturated with blocked callers. Debug builds DCHECK-fail on this.

#ifndef COD_CORE_QUERY_BATCH_H_
#define COD_CORE_QUERY_BATCH_H_

#include <span>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "core/engine_core.h"

namespace cod {

class ThreadPool;
class QueryWorkspace;

struct QuerySpec {
  CodVariant variant = CodVariant::kCodL;
  NodeId node = kInvalidNode;
  // 0 means "use the engine default" (EngineOptions::k).
  uint32_t k = 0;
  // Query topic set; ignored by kCodU / kCodUIndexed. A single element uses
  // the single-attribute paths (including the CODR hierarchy cache).
  std::vector<AttributeId> attrs;
  // Per-query wall-clock budget in seconds; 0 means "use the batch default"
  // (BatchOptions::default_budget_seconds).
  double budget_seconds = 0.0;
};

// Batch-level budget and degradation policy for RunQueryBatch. The default
// object is "no limits": every query runs its requested variant to
// completion, exactly like the options-free overload.
struct BatchOptions {
  // Default per-query budget in seconds (0 = unlimited). Each query's
  // effective deadline is Earliest(per-query deadline, batch_deadline).
  double default_budget_seconds = 0.0;
  // Absolute deadline for the whole batch (defaults to never).
  Deadline batch_deadline;
  // Optional cooperative cancellation for the whole batch; must outlive the
  // RunQueryBatch call. Cancellation beats timeout and skips degradation.
  const CancelToken* cancel = nullptr;
  // When a query's budget expires, retry it on cheaper ladder rungs (tagged
  // degraded = true) instead of returning kTimeout outright.
  bool allow_degradation = true;
};

// The RNG seed batch query `index` runs with; exposed so tests and callers
// can reproduce any single query of a batch in isolation.
inline uint64_t BatchQuerySeed(uint64_t batch_seed, size_t index) {
  uint64_t state =
      batch_seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1);
  return SplitMix64(state);
}

// Runs one spec against `core` using `ws` (the workspace's current RNG
// stream; RunQueryBatch reseeds it per query). Exposed for sequential
// re-verification of batch answers. Ignores budgets and the ladder.
CodResult RunQuerySpec(const EngineCore& core, const QuerySpec& spec,
                       QueryWorkspace& ws);

// Runs one spec under `options`' budget discipline, walking the degradation
// ladder on timeout. Every rung reseeds the workspace RNG from `query_seed`,
// so the answer for a given (spec, options, seed, budget outcome sequence)
// is deterministic. Exposed for sequential re-verification of batch answers
// (pass BatchQuerySeed(batch_seed, i) as `query_seed`).
CodResult RunQuerySpecWithBudget(const EngineCore& core, const QuerySpec& spec,
                                 QueryWorkspace& ws,
                                 const BatchOptions& options,
                                 uint64_t query_seed);

// Fans `specs` across `pool` and blocks until every result is filled.
// Thread-safe: concurrent batches may share one pool (each batch waits on
// its own completion latch, not on pool idleness).
std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     ThreadPool& pool, uint64_t batch_seed);

// As above, with per-query budgets, batch deadline / cancellation, and the
// degradation ladder. The default BatchOptions makes this identical to the
// options-free overload.
std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     ThreadPool& pool, uint64_t batch_seed,
                                     const BatchOptions& options);

}  // namespace cod

#endif  // COD_CORE_QUERY_BATCH_H_
