// Concurrent batch-query API: fan a COD query workload across a
// TaskScheduler as interactive-priority tasks.
//
// Determinism contract: query i of a batch always runs with
// Rng(BatchQuerySeed(batch_seed, i)) in a freshly reseeded per-chunk
// workspace, so the result vector is a pure function of
// (core, specs, batch_seed, effective options) — bit-identical for every
// worker count and every work-stealing interleaving, including a single
// worker. Chunks cover contiguous spec ranges and own one reusable
// QueryWorkspace each; nothing is shared mutably across chunks except the
// pre-sized result slots (one writer per slot).
//
// Budgets and graceful degradation (BatchOptions): each query runs under a
// deadline (per-spec override, batch default, and a batch-wide deadline —
// whichever is earliest) plus an optional cancel token. When a rung of work
// times out and degradation is allowed, the query retries on the next rung
// of a CHEAPER variant ladder (see DegradationLadder in the .cc / DESIGN.md)
// with the SAME per-query seed, so a degraded answer equals a direct query
// of the served variant. Answers record code / degraded / variant_served.
// Determinism caveat: budget expiry itself is a wall-clock event, so results
// are bit-identical across thread counts only for a fixed sequence of budget
// outcomes — guaranteed for unlimited budgets and for already-expired
// budgets (<= ~1ns, which deterministically fail their first poll), the
// cases the tests pin down.
//
// Admission control: when the scheduler reports interactive overload
// (TaskScheduler::ShouldShed — queue depth over its bound, or the
// "scheduler/admission" failpoint), a batch that allows degradation is shed
// one ladder rung: every query starts at rung 1 of its ladder instead of
// rung 0, decided ONCE before any chunk runs so the whole batch is
// deterministic and reproducible via RunQuerySpecWithBudget with the same
// effective options (shed answers come back degraded = true).
//
// Calling RunQueryBatch from a task running on the same scheduler is safe:
// the batch waits on a TaskGroup, and a worker-thread wait runs queued
// tasks inline instead of parking the slot (common/task_scheduler.h).

#ifndef COD_CORE_QUERY_BATCH_H_
#define COD_CORE_QUERY_BATCH_H_

#include <span>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "core/engine_core.h"

namespace cod {

class TaskScheduler;
class QueryWorkspace;

// QuerySpec now lives in core/engine_core.h (it is the input of the
// canonical EngineCore::Query entry point); this header re-exports it via
// that include for existing callers.

// Batch-level budget and degradation policy for RunQueryBatch. The default
// object is "no limits": every query runs its requested variant to
// completion, exactly like the options-free overload.
struct BatchOptions {
  // Default per-query budget in seconds (0 = unlimited). Each query's
  // effective deadline is Earliest(per-query deadline, batch_deadline).
  double default_budget_seconds = 0.0;
  // Absolute deadline for the whole batch (defaults to never).
  Deadline batch_deadline;
  // Optional cooperative cancellation for the whole batch; must outlive the
  // RunQueryBatch call. Cancellation beats timeout and skips degradation.
  const CancelToken* cancel = nullptr;
  // When a query's budget expires, retry it on cheaper ladder rungs (tagged
  // degraded = true) instead of returning kTimeout outright.
  bool allow_degradation = true;
  // Start every query this many rungs down its degradation ladder (clamped
  // so at least the cheapest rung runs). 0 = normal service. RunQueryBatch
  // raises it to >= 1 when the scheduler sheds the batch under overload;
  // setting it directly reproduces a shed batch exactly.
  size_t shed_rungs = 0;
  // Optional borrowed scheduler for intra-query parallel RR sampling inside
  // each chunk's workspace (see QueryWorkspace::SetSamplingPool). Sharing
  // the batch scheduler is fine — sampling chunks are interactive tasks and
  // group waits help inline; results are bit-identical either way, so this
  // is a latency knob only. Null = serial per-query sampling (the default;
  // cross-query parallelism usually saturates the machine already).
  TaskScheduler* sampling_pool = nullptr;
};

// Aggregate outcome tallies for one RunQueryBatch call. Workers accumulate
// locally and merge once at the end, so filling this costs nothing per
// query; the same totals feed the process-wide MetricsRegistry
// (cod_batch_queries_total{outcome=...}, cod_batch_degraded_total{rung=...}).
// Per-batch outcome tallies. The five outcome counters PARTITION the batch:
// served_ok + degraded + timeout + cancelled + shard_missed equals the
// number of specs, with every query in exactly one bucket. (`shed` is an
// orthogonal flag on the whole batch, not a bucket.)
struct BatchStats {
  uint64_t served_ok = 0;    // kOk from the requested variant (rung 0)
  uint64_t degraded = 0;     // kOk from a cheaper rung (degraded = true)
  uint64_t timeout = 0;      // every rung timed out
  uint64_t cancelled = 0;    // cancellation (skips remaining rungs)
  // Served answers by ladder rung; rung 0 is the requested variant. The
  // ladder never exceeds 5 rungs (see DegradationLadder in the .cc; the
  // fifth is the approximate sketch rung, offered only when the core
  // carries a coverage-sketch index). Shard-missed non-answers never ran a
  // rung, so they do not appear here.
  static constexpr size_t kMaxRungs = 5;
  uint64_t per_rung[kMaxRungs] = {0, 0, 0, 0, 0};
  // True when scheduler admission control shed this batch down the ladder
  // (see BatchOptions::shed_rungs).
  bool shed = false;
  // Sharded batches only (RunShardedQueryBatch): queries whose shard missed
  // the deadline (or tripped the "serving/shard_deadline" failpoint) and
  // were served as degraded NON-answers instead of errors. Its own bucket:
  // such a query is not also counted in `degraded` (the CodResult still
  // carries degraded = true so callers can tell it from a real answer).
  uint64_t shard_missed = 0;

  // Real answers only — shard-missed non-answers are excluded.
  uint64_t Served() const { return served_ok + degraded; }
};

// The RNG seed batch query `index` runs with; exposed so tests and callers
// can reproduce any single query of a batch in isolation.
inline uint64_t BatchQuerySeed(uint64_t batch_seed, size_t index) {
  uint64_t state =
      batch_seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1);
  return SplitMix64(state);
}

// Runs one spec against `core` using `ws` (the workspace's current RNG
// stream; RunQueryBatch reseeds it per query). Exposed for sequential
// re-verification of batch answers. Ignores budgets and the ladder.
CodResult RunQuerySpec(const EngineCore& core, const QuerySpec& spec,
                       QueryWorkspace& ws);

// Runs one spec under `options`' budget discipline, walking the degradation
// ladder on timeout. Every rung reseeds the workspace RNG from `query_seed`,
// so the answer for a given (spec, options, seed, budget outcome sequence)
// is deterministic. Exposed for sequential re-verification of batch answers
// (pass BatchQuerySeed(batch_seed, i) as `query_seed`).
CodResult RunQuerySpecWithBudget(const EngineCore& core, const QuerySpec& spec,
                                 QueryWorkspace& ws,
                                 const BatchOptions& options,
                                 uint64_t query_seed);

// Fans `specs` across `scheduler` and blocks until every result is filled.
// Thread-safe: concurrent batches may share one scheduler (each batch waits
// on its own TaskGroup, never on global idleness).
std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     TaskScheduler& scheduler,
                                     uint64_t batch_seed);

// As above, with per-query budgets, batch deadline / cancellation, and the
// degradation ladder. The default BatchOptions makes this identical to the
// options-free overload.
std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     TaskScheduler& scheduler,
                                     uint64_t batch_seed,
                                     const BatchOptions& options);

// As above, additionally filling `stats` (ignored when null) with the
// batch's aggregate outcome tallies.
std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     TaskScheduler& scheduler,
                                     uint64_t batch_seed,
                                     const BatchOptions& options,
                                     BatchStats* stats);

// ---- Sharded scatter/gather (the serving tier's router, src/serving/). ----

// One shard's slice of a batch: the epoch core that owns the shard's
// subgraph plus the positions (into the batch's spec span) of the queries
// routed to it. Cores are borrowed; the caller keeps the epochs alive for
// the duration of the batch.
struct ShardBatchInput {
  const EngineCore* core = nullptr;
  std::vector<size_t> indices;
};

// Fans a routed batch across `scheduler` — every shard's chunks are
// submitted up front into ONE task group, so a slow shard never gates
// another shard's start — and gathers per-query answers back into spec
// order.
//
// Determinism: query i runs with BatchQuerySeed(batch_seed, i) where i is
// its ORIGINAL position in `specs`, regardless of which shard serves it or
// how shards split into chunks. Combined with component-scoped shard
// engines (EngineOptions::component_scoped) the merged result vector is
// bit-identical across shard counts and worker counts.
//
// Shard-aware degradation: a query whose ladder exhausts its deadline
// (kTimeout) is converted to a DEGRADED NON-ANSWER — kOk, found = false,
// degraded = true, the requested variant — rather than surfacing an error:
// the batch answers from the shards that made the deadline and tags the
// rest, tallied in BatchStats::shard_missed. The "serving/shard_deadline"
// failpoint emulates a whole shard missing its deadline: it is polled once
// per shard in ascending shard order BEFORE any task is submitted (so
// arming it with count = 1 deterministically fails shard 0), and a tripped
// shard's queries are all served as degraded non-answers without touching
// its core. Cancellation still surfaces as kCancelled — a cancelled caller
// does not want fabricated answers. The one shed decision covers the whole
// sharded batch.
//
// Slots not routed to any shard are left default-constructed (kOk,
// found = false); the serving router covers every query by construction.
std::vector<CodResult> RunShardedQueryBatch(
    std::span<const ShardBatchInput> shards, std::span<const QuerySpec> specs,
    TaskScheduler& scheduler, uint64_t batch_seed, const BatchOptions& options,
    BatchStats* stats);

}  // namespace cod

#endif  // COD_CORE_QUERY_BATCH_H_
