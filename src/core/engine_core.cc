#include "core/engine_core.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/query_workspace.h"
#include "graph/connectivity.h"

namespace cod {
namespace {

DiffusionModel MakeModel(const Graph& g, DiffusionKind kind) {
  switch (kind) {
    case DiffusionKind::kIndependentCascade:
      return DiffusionModel::WeightedCascadeIc(g);
    case DiffusionKind::kLinearThreshold:
      return DiffusionModel::WeightedCascadeLt(g);
  }
  COD_CHECK(false);
  return DiffusionModel::WeightedCascadeIc(g);
}

// Non-owning alias: the caller guarantees the referent outlives the core.
template <typename T>
std::shared_ptr<const T> Alias(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &ref);
}

// Per-node connected-component sizes for component-scoped cores.
std::vector<uint32_t> ComponentSizes(const Graph& g) {
  const Components comps = ConnectedComponents(g);
  std::vector<uint32_t> count(comps.count, 0);
  for (uint32_t label : comps.label) ++count[label];
  std::vector<uint32_t> sizes(comps.label.size());
  for (size_t v = 0; v < comps.label.size(); ++v) {
    sizes[v] = count[comps.label[v]];
  }
  return sizes;
}

// A query that ran out of budget before producing an answer.
CodResult BudgetExhaustedResult(StatusCode code, CodVariant variant) {
  CodResult result;
  result.code = code;
  result.variant_served = variant;
  return result;
}

// Accumulates the enclosing scope's wall time into a QueryStats field.
// Early returns still record (destructor fires on unwind).
class StageTimer {
 public:
  explicit StageTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    *sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

// Registry handles for one variant's per-query series, resolved once per
// process (the registry mutex is only taken on first use).
struct VariantSites {
  Histogram* latency;
  Counter* ok;
  Counter* timeout;
  Counter* cancelled;
};

const VariantSites& SitesFor(CodVariant variant) {
  static const std::array<VariantSites, 6> sites = [] {
    std::array<VariantSites, 6> s{};
    MetricsRegistry& reg = MetricsRegistry::Instance();
    for (size_t i = 0; i < s.size(); ++i) {
      const std::string v = CodVariantName(static_cast<CodVariant>(i));
      s[i].latency = reg.GetHistogram("cod_query_latency_seconds{variant=\"" +
                                      v + "\"}");
      s[i].ok = reg.GetCounter("cod_queries_total{variant=\"" + v +
                               "\",outcome=\"ok\"}");
      s[i].timeout = reg.GetCounter("cod_queries_total{variant=\"" + v +
                                    "\",outcome=\"timeout\"}");
      s[i].cancelled = reg.GetCounter("cod_queries_total{variant=\"" + v +
                                      "\",outcome=\"cancelled\"}");
    }
    return s;
  }();
  return sites[static_cast<size_t>(variant)];
}

// Stage histograms and sampling counters shared by every variant.
struct StageSites {
  Histogram* chain_build;
  Histogram* lore_scan;
  Histogram* sample;
  Histogram* merge;
  Histogram* eval;
  Counter* rr_samples;
  Counter* rr_parallel_pools;
  Counter* rr_parallel_chunks;
  Counter* index_hits;
  Counter* codr_cache_hits;
  Counter* codr_cache_misses;
  Counter* codr_cache_builds;
  Counter* codr_cache_evictions;
  Counter* codr_fallbacks;
  Histogram* sketch_merge;
  Histogram* sketch_finalize;
  Counter* sketch_prune_skipped;
  Counter* sketch_prune_considered;
  Counter* sketch_rung_served;
};

const StageSites& Stages() {
  static const StageSites sites = [] {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    StageSites s{};
    s.chain_build =
        reg.GetHistogram("cod_query_stage_seconds{stage=\"chain_build\"}");
    s.lore_scan =
        reg.GetHistogram("cod_query_stage_seconds{stage=\"lore_scan\"}");
    // Pool construction spans sub-millisecond smoke graphs to multi-minute
    // big-graph pools; the chunk merge is a memcpy pass, orders of magnitude
    // below the default latency buckets. Both get explicit ranges so large
    // or tiny timings don't all land in one end bucket.
    s.sample =
        reg.GetHistogram("cod_query_stage_seconds{stage=\"rr_sampling\"}",
                         HistogramOptions::Exponential(1e-5, 3.16, 16));
    s.merge = reg.GetHistogram("cod_query_stage_seconds{stage=\"rr_merge\"}",
                               HistogramOptions::Exponential(1e-7, 10.0, 10));
    s.eval = reg.GetHistogram("cod_query_stage_seconds{stage=\"evaluation\"}");
    s.rr_samples = reg.GetCounter("cod_rr_samples_total");
    s.rr_parallel_pools = reg.GetCounter("cod_rr_parallel_pools_total");
    s.rr_parallel_chunks = reg.GetCounter("cod_rr_parallel_chunks_total");
    s.index_hits = reg.GetCounter("cod_index_hits_total");
    s.codr_cache_hits = reg.GetCounter("cod_codr_cache_hits_total");
    s.codr_cache_misses = reg.GetCounter("cod_codr_cache_misses_total");
    s.codr_cache_builds = reg.GetCounter("cod_codr_cache_builds_total");
    s.codr_cache_evictions = reg.GetCounter("cod_codr_cache_evictions_total");
    s.codr_fallbacks = reg.GetCounter("cod_codr_fallbacks_total");
    // Sketch build stages: merge tracks the bottom-up signature folding
    // inside the index build's bucket pass, finalize the CSR pack.
    s.sketch_merge = reg.GetHistogram(
        "cod_sketch_build_stage_seconds{stage=\"merge\"}");
    s.sketch_finalize = reg.GetHistogram(
        "cod_sketch_build_stage_seconds{stage=\"finalize\"}");
    s.sketch_prune_skipped =
        reg.GetCounter("cod_sketch_prune_levels_skipped_total");
    s.sketch_prune_considered =
        reg.GetCounter("cod_sketch_prune_levels_considered_total");
    s.sketch_rung_served = reg.GetCounter("cod_sketch_rung_served_total");
    // Process-wide prune rate, derived at scrape time from the two counters
    // above (Counter::Value() merges shards without the registry lock, so
    // reading them inside a scrape is deadlock-free). Registered once for
    // the process lifetime, like the counter handles themselves.
    Counter* skipped = s.sketch_prune_skipped;
    Counter* considered = s.sketch_prune_considered;
    reg.RegisterCallbackGauge("cod_sketch_prune_rate", [skipped, considered] {
      const double total = static_cast<double>(considered->Value());
      if (total <= 0.0) return 0.0;
      return static_cast<double>(skipped->Value()) / total;
    });
    return s;
  }();
  return sites;
}

}  // namespace

const char* CodVariantName(CodVariant variant) {
  switch (variant) {
    case CodVariant::kCodU:
      return "codu";
    case CodVariant::kCodR:
      return "codr";
    case CodVariant::kCodLMinus:
      return "codl_minus";
    case CodVariant::kCodL:
      return "codl";
    case CodVariant::kCodUIndexed:
      return "codu_indexed";
    case CodVariant::kCodSketch:
      return "codsketch";
  }
  COD_CHECK(false);
  return "unknown";
}

EngineCore::EngineCore(std::shared_ptr<const Graph> graph,
                       std::shared_ptr<const AttributeTable> attrs,
                       const EngineOptions& options)
    : graph_(std::move(graph)),
      attrs_(std::move(attrs)),
      options_(options),
      model_(MakeModel(*graph_, options.diffusion)),
      base_(AgglomerativeCluster(*graph_)),
      lca_(base_) {
  COD_CHECK_EQ(graph_->NumNodes(), attrs_->NumNodes());
  COD_CHECK(graph_->NumNodes() >= 2);
  if (options_.component_scoped) comp_size_of_node_ = ComponentSizes(*graph_);
}

EngineCore::EngineCore(const Graph& graph, const AttributeTable& attrs,
                       const EngineOptions& options)
    : EngineCore(Alias(graph), Alias(attrs), options) {}

EngineCore::EngineCore(PrebuiltTag, std::shared_ptr<const Graph> graph,
                       std::shared_ptr<const AttributeTable> attrs,
                       const EngineOptions& options, Dendrogram base_hierarchy)
    : graph_(std::move(graph)),
      attrs_(std::move(attrs)),
      options_(options),
      model_(MakeModel(*graph_, options.diffusion)),
      base_(std::move(base_hierarchy)),
      lca_(base_) {
  if (options_.component_scoped) comp_size_of_node_ = ComponentSizes(*graph_);
}

Result<std::unique_ptr<EngineCore>> EngineCore::FromPrebuilt(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const AttributeTable> attrs, const EngineOptions& options,
    Dendrogram base_hierarchy, std::optional<HimorIndex> himor,
    std::optional<CoverageSketchIndex> sketch, bool index_absent_degraded) {
  if (graph == nullptr || attrs == nullptr) {
    return Status::InvalidArgument("FromPrebuilt requires graph and attrs");
  }
  if (graph->NumNodes() < 2) {
    return Status::InvalidArgument("prebuilt graph has fewer than 2 nodes");
  }
  if (attrs->NumNodes() != graph->NumNodes()) {
    return Status::InvalidArgument(
        "attribute table covers a different node set than the graph");
  }
  if (base_hierarchy.NumLeaves() != graph->NumNodes()) {
    return Status::InvalidArgument(
        "base hierarchy was built over a different graph (leaf count "
        "mismatch)");
  }
  if (himor.has_value() && himor->NumNodes() != graph->NumNodes()) {
    return Status::InvalidArgument(
        "HIMOR index was built for a different graph (node count mismatch)");
  }
  if (himor.has_value() && index_absent_degraded) {
    return Status::InvalidArgument(
        "a core with an index cannot be index-absent degraded");
  }
  if (sketch.has_value()) {
    if (!himor.has_value()) {
      return Status::InvalidArgument(
          "a coverage sketch requires the HIMOR index it was built with");
    }
    if (sketch->NumNodes() != graph->NumNodes()) {
      return Status::InvalidArgument(
          "coverage sketch was built for a different graph (node count "
          "mismatch)");
    }
    if (sketch->theta() != options.theta) {
      return Status::InvalidArgument(
          "coverage sketch was built under a different theta");
    }
  }
  std::unique_ptr<EngineCore> core(new EngineCore(
      PrebuiltTag{}, std::move(graph), std::move(attrs), options,
      std::move(base_hierarchy)));
  if (himor.has_value()) {
    core->himor_ = std::move(himor);
    core->sketch_ = std::move(sketch);
  } else if (index_absent_degraded) {
    core->MarkIndexAbsent();
  }
  return core;
}

CommunityId EngineCore::ScopeTopFor(const Dendrogram& dendrogram,
                                    NodeId q) const {
  if (!options_.component_scoped) return kInvalidCommunity;
  // Walk up from q's parent while the subtree still fits inside q's
  // component; the stop is the component subtree root (the dendrogram stacks
  // whole components under one root, see hierarchy/agglomerative.cc). On a
  // connected graph this IS the root, making scoping a no-op.
  const uint32_t comp_size = comp_size_of_node_[q];
  CommunityId c = dendrogram.Parent(dendrogram.LeafOf(q));
  COD_DCHECK(c != kInvalidCommunity);
  while (dendrogram.Parent(c) != kInvalidCommunity &&
         dendrogram.LeafCount(dendrogram.Parent(c)) <= comp_size) {
    c = dendrogram.Parent(c);
  }
  return c;
}

CodChain EngineCore::BuildCoduChain(NodeId q) const {
  const CommunityId top = ScopeTopFor(base_, q);
  CodChain chain = BuildChainFromDendrogram(base_, q, top);
  // CODU chains live in the BASE dendrogram — the one the coverage sketch
  // (when built) indexes — so record the community id of every level to
  // enable sketch-guided pruning. The chain builder itself never fills this
  // (other callers hand it foreign dendrograms).
  chain.level_community.reserve(chain.NumLevels());
  for (CommunityId c = base_.Parent(base_.LeafOf(q)); c != kInvalidCommunity;
       c = base_.Parent(c)) {
    chain.level_community.push_back(c);
    if (c == top) break;
  }
  COD_DCHECK(chain.level_community.size() == chain.NumLevels());
  return chain;
}

CodChain EngineCore::BuildCodrChain(NodeId q, AttributeId attr) const {
  if (options_.cache_codr_hierarchies) {
    bool from_cache = false;
    Result<std::shared_ptr<const Dendrogram>> cached =
        CodrDendrogramFor(attr, Budget{}, &from_cache);
    if (cached.ok()) {
      return BuildChainFromDendrogram(*cached.value(), q,
                                      ScopeTopFor(*cached.value(), q));
    }
    // Cache build failed (failpoint injection): build privately below — this
    // unbudgeted chain-builder form has no failure channel to report through.
  }
  const Dendrogram dendrogram =
      GlobalRecluster(*graph_, *attrs_, attr, options_.transform);
  return BuildChainFromDendrogram(dendrogram, q,
                                  ScopeTopFor(dendrogram, q));
}

Result<std::shared_ptr<const Dendrogram>> EngineCore::CodrDendrogramFor(
    AttributeId attr, const Budget& budget, bool* served_from_cache) const {
  std::unique_lock<std::mutex> lock(codr_mu_);
  for (;;) {
    auto it = codr_cache_.find(attr);
    if (it == codr_cache_.end()) break;  // cold miss: become the builder
    if (it->second.dendrogram != nullptr) {
      it->second.last_used = ++codr_lru_tick_;
      *served_from_cache = true;
      return it->second.dendrogram;
    }
    // Single flight: another thread is already building this attribute.
    // Wait for its result instead of running a redundant GlobalRecluster,
    // honoring our own budget while we wait (an infinite-deadline wait with
    // a cancel token is sliced so cancellation is observed promptly).
    Status overdue = budget.Check("codr cache wait");
    if (!overdue.ok()) return overdue;
    if (budget.deadline.infinite()) {
      if (budget.cancel != nullptr) {
        codr_cv_.wait_for(lock, std::chrono::milliseconds(10));
      } else {
        codr_cv_.wait(lock);
      }
    } else {
      codr_cv_.wait_until(lock, budget.deadline.time_point());
    }
  }
  codr_cache_[attr];  // null dendrogram = in-flight latch for this attribute
  lock.unlock();
  *served_from_cache = false;
  Result<Dendrogram> built = [&]() -> Result<Dendrogram> {
    if (COD_FAILPOINT("engine_core/codr_cache")) {
      return Status::IoError("failpoint engine_core/codr_cache armed");
    }
    return GlobalRecluster(*graph_, *attrs_, attr, options_.transform, budget);
  }();
  lock.lock();
  if (!built.ok()) {
    // Only successful builds are cached. Drop the latch and wake the waiters
    // so one of them can take over (or fall back / report its own budget).
    codr_cache_.erase(attr);
    codr_cv_.notify_all();
    return built.status();
  }
  CodrCacheEntry& entry = codr_cache_[attr];
  entry.dendrogram =
      std::make_shared<const Dendrogram>(std::move(built).value());
  entry.last_used = ++codr_lru_tick_;
  // Hold our own reference before eviction runs: with capacity 1 and a
  // concurrent in-flight build, the entry we just inserted can itself be
  // the LRU victim.
  std::shared_ptr<const Dendrogram> result = entry.dendrogram;
  if (MetricsRegistry::enabled()) Stages().codr_cache_builds->Increment();
  EvictCodrOverflowLocked();
  codr_cv_.notify_all();
  return result;
}

void EngineCore::EvictCodrOverflowLocked() const {
  const size_t cap = options_.codr_cache_capacity;
  if (cap == 0) return;
  while (codr_cache_.size() > cap) {
    auto victim = codr_cache_.end();
    for (auto it = codr_cache_.begin(); it != codr_cache_.end(); ++it) {
      if (it->second.dendrogram == nullptr) continue;  // in-flight latch
      if (victim == codr_cache_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == codr_cache_.end()) return;  // nothing evictable yet
    codr_cache_.erase(victim);
    if (MetricsRegistry::enabled()) {
      Stages().codr_cache_evictions->Increment();
    }
  }
}

size_t EngineCore::CodrCacheSize() const {
  std::lock_guard<std::mutex> lock(codr_mu_);
  return codr_cache_.size();
}

LoreChain EngineCore::BuildCodlChain(NodeId q, AttributeId attr) const {
  return BuildCodlChain(q, std::span<const AttributeId>(&attr, 1));
}

LoreChain EngineCore::BuildCodlChain(
    NodeId q, std::span<const AttributeId> attrs) const {
  // An unlimited budget never aborts, so the Result form cannot fail here.
  Result<LoreChain> built = BuildCodlChainFromScores(
      ComputeReclusteringScores(*graph_, *attrs_, base_, lca_, q, attrs,
                                Budget{}, ScopeTopFor(base_, q)),
      q, attrs, Budget{});
  COD_CHECK(built.ok());
  return std::move(built).value();
}

Result<LoreChain> EngineCore::BuildCodlChainFromScores(
    const LoreScores& scores, NodeId q, std::span<const AttributeId> attrs,
    const Budget& budget) const {
  COD_DCHECK(scores.code == StatusCode::kOk);
  LoreChain out;
  out.c_ell = scores.Selected();

  // Locally recluster C_ell's induced subgraph with attribute weights.
  const auto members = base_.Members(out.c_ell);
  const InducedSubgraph sub = BuildAttributeWeightedSubgraph(
      *graph_, *attrs_, attrs, options_.transform, members);
  Result<Dendrogram> local =
      AgglomerativeCluster(sub.graph, AgglomerativeOptions{}, budget);
  if (!local.ok()) return local.status();
  NodeId local_q = kInvalidNode;
  for (size_t i = 0; i < sub.to_parent.size(); ++i) {
    if (sub.to_parent[i] == q) {
      local_q = static_cast<NodeId>(i);
      break;
    }
  }
  COD_CHECK(local_q != kInvalidNode);
  out.chain = BuildChainFromDendrogram(*local, local_q, kInvalidCommunity,
                                       &sub.to_parent, graph_->NumNodes());
  out.local_levels = out.chain.NumLevels();
  // The local levels come from a private reclustered dendrogram the sketch
  // knows nothing about (kInvalidCommunity = unprunable); the global
  // ancestors spliced below ARE base communities. Since pruning only ever
  // drops a top-contiguous suffix, the spliced tail is exactly the prunable
  // region.
  out.chain.level_community.assign(out.local_levels, kInvalidCommunity);

  // Splice the untouched global ancestors of C_ell on top. Each ancestor's
  // fresh nodes are the prefix + suffix of its member span around its
  // on-path child's span (nested leaf intervals). The splice stops at the
  // top of the scores chain — the root unscoped, the component subtree root
  // under component scoping (the scores chain is truncated there, so the
  // spliced chain ends at the same community either way).
  const uint32_t splice_top_depth = base_.Depth(scores.chain.back());
  const NodeId* prev_begin = members.data();
  const NodeId* prev_end = members.data() + members.size();
  std::vector<NodeId> fresh;
  for (CommunityId a = base_.Parent(out.c_ell);
       a != kInvalidCommunity && base_.Depth(a) >= splice_top_depth;
       a = base_.Parent(a)) {
    const auto span = base_.Members(a);
    const NodeId* begin = span.data();
    const NodeId* end = span.data() + span.size();
    COD_CHECK(begin <= prev_begin && prev_end <= end);
    fresh.assign(begin, prev_begin);
    fresh.insert(fresh.end(), prev_end, end);
    AppendLevelWithNewMembers(&out.chain, fresh,
                              static_cast<uint32_t>(span.size()));
    out.chain.level_community.push_back(a);
    prev_begin = begin;
    prev_end = end;
  }
  return out;
}

CodResult EngineCore::EvaluateChain(const CodChain& chain, NodeId q,
                                    uint32_t k, QueryWorkspace& ws) const {
  COD_DCHECK(ws.bound_core() == this);  // Rebind the workspace to this core
  // Sketch guidance only makes sense when the chain names its communities in
  // the base dendrogram (CODU chains, and the spliced tail of CODL- chains);
  // the evaluator re-checks theta and pins the pool to the sketch schedule.
  const SketchPruneGuide guide{sketch(), options_.sketch_prune};
  const SketchPruneGuide* guide_ptr =
      guide.sketch != nullptr && !chain.level_community.empty() ? &guide
                                                                : nullptr;
  const ChainEvalOutcome outcome =
      ws.evaluator().Evaluate(chain, q, k, ws.rng(), ws.budget(),
                              ws.effective_sampling_pool(), guide_ptr);
  QueryStats& st = ws.stats();
  st.sample_seconds += ws.evaluator().last_sample_seconds();
  st.merge_seconds += ws.evaluator().last_merge_seconds();
  st.eval_seconds += ws.evaluator().last_eval_seconds();
  st.rr_samples += ws.evaluator().last_samples();
  st.explored_nodes += ws.evaluator().last_explored_nodes();
  st.parallel_chunks += ws.evaluator().last_parallel_chunks();
  st.sketch_levels_pruned += ws.evaluator().last_levels_pruned();
  st.sketch_levels_considered += ws.evaluator().last_levels_considered();
  CodResult result;
  result.num_levels = chain.NumLevels();
  result.code = outcome.code;
  if (outcome.code == StatusCode::kOk && outcome.best_level >= 0) {
    result.found = true;
    result.rank = outcome.rank_at_best;
    result.members =
        chain.MembersOfLevel(static_cast<uint32_t>(outcome.best_level));
  }
  return result;
}

CodResult EngineCore::Query(const QuerySpec& spec, QueryWorkspace& ws) const {
  COD_DCHECK(ws.bound_core() == this);
  ws.stats() = QueryStats{};
  ws.SetParallelSampling(spec.parallel_sampling);
  const uint32_t k = spec.k == 0 ? options_.k : spec.k;
  const auto start = std::chrono::steady_clock::now();
  CodResult result;
  // Component-scoped cores answer queries on single-node components
  // definitively: no edges means no influence and no community (kOk with
  // found=false, not an error). The guard keeps every evaluator — and
  // ScopeTopFor, whose walk would land on the impure root — off this
  // degenerate case.
  if (IsSingletonComponent(spec.node)) {
    result.variant_served = spec.variant;
  } else {
    switch (spec.variant) {
      case CodVariant::kCodU:
        result = DoCodU(spec.node, k, ws);
        break;
      case CodVariant::kCodUIndexed:
        if (!himor_.has_value()) {
          // Index-absent degraded mode: sampled CODU answers the same
          // question (largest base community with q in the top-k) without
          // the index, at sampling cost and with estimated (not exact)
          // ranks.
          COD_CHECK(index_absent_degraded_);
          result = DoCodU(spec.node, k, ws);
          result.degraded = true;
        } else {
          result = DoCodUIndexed(spec.node, k);
        }
        break;
      case CodVariant::kCodR:
        result = spec.attrs.size() == 1
                     ? DoCodRSingle(spec.node, spec.attrs[0], k, ws)
                     : DoCodRSpan(spec.node, spec.attrs, k, ws);
        break;
      case CodVariant::kCodLMinus:
        result = DoCodLMinus(spec.node, spec.attrs, k, ws);
        break;
      case CodVariant::kCodL:
        result = DoCodL(spec.node, spec.attrs, k, ws);
        break;
      case CodVariant::kCodSketch:
        result = DoCodSketch(spec.node, k);
        break;
    }
  }
  QueryStats& st = ws.stats();
  if (result.answered_from_index) st.index_hit = true;
  st.levels_examined = result.num_levels;
  result.stats = st;

  if (MetricsRegistry::enabled()) {
    const double total = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const VariantSites& vs = SitesFor(spec.variant);
    vs.latency->Observe(total);
    switch (result.code) {
      case StatusCode::kOk:
        vs.ok->Increment();
        break;
      case StatusCode::kTimeout:
        vs.timeout->Increment();
        break;
      case StatusCode::kCancelled:
        vs.cancelled->Increment();
        break;
      default:
        break;
    }
    const StageSites& ss = Stages();
    if (st.chain_build_seconds > 0.0) {
      ss.chain_build->Observe(st.chain_build_seconds);
    }
    if (st.lore_scan_seconds > 0.0) ss.lore_scan->Observe(st.lore_scan_seconds);
    if (st.sample_seconds > 0.0) ss.sample->Observe(st.sample_seconds);
    if (st.merge_seconds > 0.0) ss.merge->Observe(st.merge_seconds);
    if (st.eval_seconds > 0.0) ss.eval->Observe(st.eval_seconds);
    if (st.rr_samples > 0) ss.rr_samples->Increment(st.rr_samples);
    if (st.parallel_chunks > 0) {
      ss.rr_parallel_pools->Increment();
      ss.rr_parallel_chunks->Increment(st.parallel_chunks);
    }
    if (st.index_hit) ss.index_hits->Increment();
    if (st.sketch_levels_considered > 0) {
      ss.sketch_prune_considered->Increment(st.sketch_levels_considered);
      ss.sketch_prune_skipped->Increment(st.sketch_levels_pruned);
    }
    if (result.variant_served == CodVariant::kCodSketch) {
      ss.sketch_rung_served->Increment();
    }
    if (spec.variant == CodVariant::kCodR && spec.attrs.size() == 1 &&
        options_.cache_codr_hierarchies) {
      (st.codr_cache_hit ? ss.codr_cache_hits : ss.codr_cache_misses)
          ->Increment();
    }
  }
  return result;
}

CodResult EngineCore::QueryCodU(NodeId q, uint32_t k,
                                QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodU;
  spec.node = q;
  spec.k = k;
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodR(NodeId q, AttributeId attr, uint32_t k,
                                QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodR;
  spec.node = q;
  spec.k = k;
  spec.attrs.assign(1, attr);
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodR(NodeId q, std::span<const AttributeId> attrs,
                                uint32_t k, QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodR;
  spec.node = q;
  spec.k = k;
  spec.attrs.assign(attrs.begin(), attrs.end());
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodLMinus(NodeId q, AttributeId attr, uint32_t k,
                                     QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodLMinus;
  spec.node = q;
  spec.k = k;
  spec.attrs.assign(1, attr);
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodLMinus(NodeId q,
                                     std::span<const AttributeId> attrs,
                                     uint32_t k, QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodLMinus;
  spec.node = q;
  spec.k = k;
  spec.attrs.assign(attrs.begin(), attrs.end());
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                                QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodL;
  spec.node = q;
  spec.k = k;
  spec.attrs.assign(1, attr);
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodL(NodeId q, std::span<const AttributeId> attrs,
                                uint32_t k, QueryWorkspace& ws) const {
  QuerySpec spec;
  spec.variant = CodVariant::kCodL;
  spec.node = q;
  spec.k = k;
  spec.attrs.assign(attrs.begin(), attrs.end());
  return Query(spec, ws);
}

CodResult EngineCore::QueryCodUIndexed(NodeId q, uint32_t k) const {
  return DoCodUIndexed(q, k);
}

CodResult EngineCore::DoCodU(NodeId q, uint32_t k, QueryWorkspace& ws) const {
  CodChain chain;
  {
    StageTimer timer(&ws.stats().chain_build_seconds);
    chain = BuildCoduChain(q);
  }
  CodResult result = EvaluateChain(chain, q, k, ws);
  result.variant_served = CodVariant::kCodU;
  return result;
}

CodResult EngineCore::DoCodRSingle(NodeId q, AttributeId attr, uint32_t k,
                                   QueryWorkspace& ws) const {
  QueryStats& st = ws.stats();
  CodChain chain;
  bool fell_back = false;
  {
    StageTimer timer(&st.chain_build_seconds);
    if (options_.cache_codr_hierarchies) {
      bool from_cache = false;
      Result<std::shared_ptr<const Dendrogram>> cached =
          CodrDendrogramFor(attr, ws.budget(), &from_cache);
      st.codr_cache_hit = from_cache;
      if (cached.ok()) {
        chain = BuildChainFromDendrogram(*cached.value(), q,
                                         ScopeTopFor(*cached.value(), q));
      } else if (cached.status().code() == StatusCode::kCancelled) {
        // A cancelled caller does not want a cheaper answer.
        return BudgetExhaustedResult(StatusCode::kCancelled,
                                     CodVariant::kCodR);
      } else {
        // Degraded fallback: the attribute hierarchy is unavailable (the
        // budgeted first-touch build failed or the "engine_core/codr_cache"
        // failpoint fired) — answer over the BASE hierarchy instead of
        // surfacing the build error. The evaluation still measures true
        // influence, so this is a valid (if attribute-blind) community,
        // tagged degraded with variant_served = kCodU. If the budget is
        // genuinely spent the evaluation below still unwinds kTimeout —
        // deadline discipline always wins.
        chain = BuildCoduChain(q);
        fell_back = true;
      }
    } else {
      Result<Dendrogram> dendrogram = GlobalRecluster(
          *graph_, *attrs_, attr, options_.transform, ws.budget());
      if (!dendrogram.ok()) {
        return BudgetExhaustedResult(dendrogram.status().code(),
                                     CodVariant::kCodR);
      }
      chain = BuildChainFromDendrogram(*dendrogram, q,
                                       ScopeTopFor(*dendrogram, q));
    }
  }
  CodResult result = EvaluateChain(chain, q, k, ws);
  result.variant_served = fell_back ? CodVariant::kCodU : CodVariant::kCodR;
  result.degraded = fell_back;
  if (fell_back && MetricsRegistry::enabled()) {
    Stages().codr_fallbacks->Increment();
  }
  return result;
}

CodResult EngineCore::DoCodRSpan(NodeId q, std::span<const AttributeId> attrs,
                                 uint32_t k, QueryWorkspace& ws) const {
  // Topic-set CODR never uses the per-attribute cache.
  QueryStats& st = ws.stats();
  CodChain chain;
  {
    StageTimer timer(&st.chain_build_seconds);
    Result<Dendrogram> dendrogram = GlobalRecluster(
        *graph_, *attrs_, attrs, options_.transform, ws.budget());
    if (!dendrogram.ok()) {
      return BudgetExhaustedResult(dendrogram.status().code(),
                                   CodVariant::kCodR);
    }
    chain = BuildChainFromDendrogram(*dendrogram, q,
                                     ScopeTopFor(*dendrogram, q));
  }
  CodResult result = EvaluateChain(chain, q, k, ws);
  result.variant_served = CodVariant::kCodR;
  return result;
}

CodResult EngineCore::DoCodLMinus(NodeId q,
                                  std::span<const AttributeId> attrs,
                                  uint32_t k, QueryWorkspace& ws) const {
  QueryStats& st = ws.stats();
  LoreScores scores;
  {
    StageTimer timer(&st.lore_scan_seconds);
    scores = ComputeReclusteringScores(*graph_, *attrs_, base_, lca_, q, attrs,
                                       ws.budget(), ScopeTopFor(base_, q));
  }
  if (scores.code != StatusCode::kOk) {
    return BudgetExhaustedResult(scores.code, CodVariant::kCodLMinus);
  }
  CodChain chain;
  {
    StageTimer timer(&st.chain_build_seconds);
    Result<LoreChain> built =
        BuildCodlChainFromScores(scores, q, attrs, ws.budget());
    if (!built.ok()) {
      return BudgetExhaustedResult(built.status().code(),
                                   CodVariant::kCodLMinus);
    }
    chain = std::move(built).value().chain;
  }
  CodResult result = EvaluateChain(chain, q, k, ws);
  result.variant_served = CodVariant::kCodLMinus;
  return result;
}

CodResult EngineCore::DoCodL(NodeId q, std::span<const AttributeId> attrs,
                             uint32_t k, QueryWorkspace& ws) const {
  if (!himor_.has_value()) {
    // Index-absent degraded mode (MarkIndexAbsent): answer with the CODL-
    // computation — LORE pick of C_ell, local recluster, spliced global
    // ancestors, compressed evaluation. Same communities the paper's
    // Algorithm 3 fallback produces; only the index short-circuit is lost.
    // A core that simply never built its index is still a programming error.
    COD_CHECK(index_absent_degraded_);
    CodResult result = DoCodLMinus(q, attrs, k, ws);
    result.degraded = true;  // variant_served stays kCodLMinus: what ran
    return result;
  }
  QueryStats& st = ws.stats();
  LoreScores scores;
  {
    StageTimer timer(&st.lore_scan_seconds);
    scores = ComputeReclusteringScores(*graph_, *attrs_, base_, lca_, q, attrs,
                                       ws.budget(), ScopeTopFor(base_, q));
  }
  if (scores.code != StatusCode::kOk) {
    return BudgetExhaustedResult(scores.code, CodVariant::kCodL);
  }
  const CommunityId c_ell = scores.Selected();

  // Fast path: some untouched ancestor of C_ell already has q in its top-k.
  if (const HimorIndex::Entry* hit =
          himor_->FindTopKAncestor(q, c_ell, k, base_)) {
    st.index_hit = true;
    CodResult result;
    result.found = true;
    result.answered_from_index = true;
    result.variant_served = CodVariant::kCodL;
    result.rank = hit->rank;
    const auto span = base_.Members(hit->community);
    result.members.assign(span.begin(), span.end());
    result.num_levels = scores.chain.size();  // chain length consulted
    return result;
  }

  // Slow path: locally recluster C_ell and run compressed evaluation on the
  // attribute-aware chain inside it.
  CodChain chain;
  {
    StageTimer timer(&st.chain_build_seconds);
    const auto members = base_.Members(c_ell);
    const InducedSubgraph sub = BuildAttributeWeightedSubgraph(
        *graph_, *attrs_, attrs, options_.transform, members);
    Result<Dendrogram> local =
        AgglomerativeCluster(sub.graph, AgglomerativeOptions{}, ws.budget());
    if (!local.ok()) {
      return BudgetExhaustedResult(local.status().code(), CodVariant::kCodL);
    }
    NodeId local_q = kInvalidNode;
    for (size_t i = 0; i < sub.to_parent.size(); ++i) {
      if (sub.to_parent[i] == q) {
        local_q = static_cast<NodeId>(i);
        break;
      }
    }
    COD_CHECK(local_q != kInvalidNode);
    chain = BuildChainFromDendrogram(*local, local_q, kInvalidCommunity,
                                     &sub.to_parent, graph_->NumNodes());
  }
  CodResult result = EvaluateChain(chain, q, k, ws);
  result.variant_served = CodVariant::kCodL;
  return result;
}

CodResult EngineCore::DoCodUIndexed(NodeId q, uint32_t k) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  CodResult result;
  result.variant_served = CodVariant::kCodUIndexed;
  // Singleton guard for the workspace-free QueryCodUIndexed entry, which
  // bypasses Query()'s dispatch (and its guard).
  if (IsSingletonComponent(q)) return result;
  const CommunityId top = ScopeTopFor(base_, q);
  result.num_levels =
      top == kInvalidCommunity
          ? base_.Depth(base_.Parent(base_.LeafOf(q)))
          : base_.Depth(base_.Parent(base_.LeafOf(q))) - base_.Depth(top) + 1;
  const HimorIndex::Entry* hit =
      himor_->FindTopKAncestor(q, base_.Parent(base_.LeafOf(q)), k, base_);
  if (hit == nullptr) return result;
  result.found = true;
  result.answered_from_index = true;
  result.rank = hit->rank;
  const auto span = base_.Members(hit->community);
  result.members.assign(span.begin(), span.end());
  return result;
}

CodResult EngineCore::DoCodSketch(NodeId q, uint32_t k) const {
  // The degradation ladder only appends this rung when sketch() exists and
  // k fits the stored rank depth; direct callers get the same contract.
  COD_CHECK(sketch_.has_value());
  const CoverageSketchIndex& sk = *sketch_;
  COD_CHECK(k >= 1 && k <= sk.rank_depth());
  CodResult result;
  result.variant_served = CodVariant::kCodSketch;
  // An estimate from precomputed tables, not an evaluation: ALWAYS tagged
  // degraded, even when it happens to match the exact answer.
  result.degraded = true;
  if (IsSingletonComponent(q)) return result;
  const CommunityId top = ScopeTopFor(base_, q);
  // Ancestors of q, deepest first (same walk as the CODU chain).
  std::vector<CommunityId> chain;
  for (CommunityId c = base_.Parent(base_.LeafOf(q)); c != kInvalidCommunity;
       c = base_.Parent(c)) {
    chain.push_back(c);
    if (c == top) break;
  }
  result.num_levels = chain.size();
  const uint32_t tq = q < sk.NumNodes() ? sk.TopCountOf(q) : 0;
  // Largest (topmost) ancestor whose threshold table estimates q inside the
  // top-k. Zero-support communities (not materialized under the purity
  // rule, or never reached by any sample) carry no evidence — skip them.
  for (size_t i = chain.size(); i-- > 0;) {
    const CommunityId c = chain[i];
    if (c >= sk.NumCommunities() || sk.SupportOf(c) == 0) continue;
    const uint32_t rank = sk.EstimatedRank(c, tq);
    if (rank < k) {
      result.found = true;
      result.answered_from_index = true;
      result.rank = rank;
      const auto span = base_.Members(c);
      result.members.assign(span.begin(), span.end());
      break;
    }
  }
  return result;
}

QueryExplanation EngineCore::ExplainCodL(NodeId q, AttributeId attr,
                                         uint32_t k,
                                         QueryWorkspace& ws) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  QueryExplanation explanation;
  explanation.scores = ComputeReclusteringScores(
      *graph_, *attrs_, base_, lca_, q,
      std::span<const AttributeId>(&attr, 1), Budget{},
      ScopeTopFor(base_, q));
  const CommunityId c_ell = explanation.scores.Selected();
  explanation.c_ell_size = base_.LeafCount(c_ell);

  if (const HimorIndex::Entry* hit =
          himor_->FindTopKAncestor(q, c_ell, k, base_)) {
    explanation.index_hit = true;
    explanation.index_community = hit->community;
    explanation.index_rank = hit->rank;
    explanation.result.found = true;
    explanation.result.answered_from_index = true;
    explanation.result.variant_served = CodVariant::kCodL;
    explanation.result.rank = hit->rank;
    const auto span = base_.Members(hit->community);
    explanation.result.members.assign(span.begin(), span.end());
    return explanation;
  }
  // Fall back to the uninstrumented slow path (identical code path).
  explanation.result = QueryCodL(q, attr, k, ws);
  return explanation;
}

std::string QueryExplanation::ToString(const Dendrogram& hierarchy) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "LORE chain: %zu levels; reclustering scores:\n",
                scores.chain.size());
  out += line;
  for (size_t i = 0; i < scores.chain.size(); ++i) {
    std::snprintf(line, sizeof(line), "  level %2zu  |C|=%-7u r=%.4f%s\n", i,
                  hierarchy.LeafCount(scores.chain[i]), scores.score[i],
                  i == scores.selected ? "  <- C_ell" : "");
    out += line;
  }
  if (index_hit) {
    std::snprintf(line, sizeof(line),
                  "HIMOR hit: community of %u nodes above C_ell, stored rank "
                  "%u\n",
                  hierarchy.LeafCount(index_community), index_rank + 1);
    out += line;
  } else {
    out += "HIMOR miss: evaluated the reclustered chain inside C_ell\n";
  }
  if (result.found) {
    std::snprintf(line, sizeof(line),
                  "result: characteristic community of %zu members, query "
                  "rank #%u\n",
                  result.members.size(), result.rank + 1);
    out += line;
  } else {
    out += "result: no characteristic community\n";
  }
  return out;
}

std::vector<Promoter> EngineCore::FindTopPromoters(AttributeId attr,
                                                   size_t count,
                                                   uint32_t k) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  COD_CHECK(count >= 1);
  std::vector<Promoter> promoters;
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    if (!attrs_->Has(v, attr)) continue;
    // Largest base-hierarchy community where v is top-k: the whole chain is
    // eligible, so scan from the root side of v's index entries.
    const HimorIndex::Entry* hit = himor_->FindTopKAncestor(
        v, base_.Parent(base_.LeafOf(v)), k, base_);
    if (hit == nullptr) continue;
    promoters.push_back(Promoter{v, hit->community,
                                 base_.LeafCount(hit->community), hit->rank});
  }
  std::sort(promoters.begin(), promoters.end(),
            [](const Promoter& a, const Promoter& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.node < b.node;
            });
  if (promoters.size() > count) promoters.resize(count);
  return promoters;
}

Status EngineCore::SaveHimor(const std::string& path) const {
  if (!himor_.has_value()) {
    return Status::FailedPrecondition("no HIMOR index built");
  }
  return himor_->Save(path);
}

Status EngineCore::LoadHimor(const std::string& path) {
  Result<HimorIndex> loaded = HimorIndex::Load(path);
  if (!loaded.ok()) return loaded.status();
  if (loaded->NumNodes() != graph_->NumNodes()) {
    return Status::InvalidArgument(
        "HIMOR index was built for a different graph (node count mismatch)");
  }
  himor_ = std::move(loaded).value();
  // Any resident sketch belongs to the REPLACED index's build (its rung
  // estimates would disagree with the loaded entries), so drop it. Pruning
  // and the sketch rung just switch off.
  sketch_.reset();
  return Status::Ok();
}

void EngineCore::AdoptSketch(std::optional<CoverageSketchIndex> sketch) {
  sketch_ = std::move(sketch);
  if (sketch_.has_value() && MetricsRegistry::enabled()) {
    const StageSites& ss = Stages();
    ss.sketch_merge->Observe(sketch_->build_merge_seconds());
    ss.sketch_finalize->Observe(sketch_->build_finalize_seconds());
  }
}

void EngineCore::BuildHimor(Rng& rng) {
  std::optional<CoverageSketchIndex> sketch;
  Result<HimorIndex> built =
      options_.component_scoped
          ? HimorIndex::BuildScoped(model_, base_, lca_, options_.theta,
                                    rng.Next(), options_.himor_max_rank,
                                    Budget{}, comp_size_of_node_,
                                    options_.sketch_bits, &sketch)
          : HimorIndex::Build(model_, base_, lca_, options_.theta, rng,
                              options_.himor_max_rank, Budget{},
                              options_.sketch_bits, &sketch);
  COD_CHECK(built.ok());
  himor_ = std::move(built).value();
  AdoptSketch(std::move(sketch));
}

void EngineCore::BuildHimorParallel(uint64_t seed, size_t num_threads) {
  std::optional<CoverageSketchIndex> sketch;
  // Under component scoping the scoped builder already seeds per source, so
  // it is thread-count independent; num_threads is moot.
  Result<HimorIndex> built =
      options_.component_scoped
          ? HimorIndex::BuildScoped(model_, base_, lca_, options_.theta,
                                    seed, options_.himor_max_rank, Budget{},
                                    comp_size_of_node_, options_.sketch_bits,
                                    &sketch)
          : HimorIndex::BuildParallel(model_, base_, lca_, options_.theta,
                                      seed, options_.himor_max_rank,
                                      num_threads, Budget{},
                                      options_.sketch_bits, &sketch);
  COD_CHECK(built.ok());
  himor_ = std::move(built).value();
  AdoptSketch(std::move(sketch));
}

Status EngineCore::TryBuildHimor(Rng& rng, const Budget& budget) {
  std::optional<CoverageSketchIndex> sketch;
  Result<HimorIndex> built =
      options_.component_scoped
          ? HimorIndex::BuildScoped(model_, base_, lca_, options_.theta,
                                    rng.Next(), options_.himor_max_rank,
                                    budget, comp_size_of_node_,
                                    options_.sketch_bits, &sketch)
          : HimorIndex::Build(model_, base_, lca_, options_.theta, rng,
                              options_.himor_max_rank, budget,
                              options_.sketch_bits, &sketch);
  if (!built.ok()) return built.status();
  himor_ = std::move(built).value();
  AdoptSketch(std::move(sketch));
  return Status::Ok();
}

Status EngineCore::TryBuildHimorDelta(uint64_t seed, const Budget& budget,
                                      const std::vector<char>* dirty,
                                      HimorSampleCache* prev,
                                      HimorSampleCache* next,
                                      HimorDeltaStats* stats) {
  std::optional<CoverageSketchIndex> sketch;
  Result<HimorIndex> built = HimorIndex::BuildDelta(
      model_, base_, lca_, options_.theta, seed, options_.himor_max_rank,
      budget, options_.component_scoped ? &comp_size_of_node_ : nullptr,
      dirty, prev, next, stats, options_.sketch_bits, &sketch);
  if (!built.ok()) return built.status();
  himor_ = std::move(built).value();
  AdoptSketch(std::move(sketch));
  return Status::Ok();
}

void EngineCore::MarkIndexAbsent() {
  COD_CHECK(!himor_.has_value());  // an existing index is never discarded
  sketch_.reset();  // sketch without index would be unreachable anyway
  index_absent_degraded_ = true;
}

Status EngineCore::TryBuildHimorParallel(uint64_t seed, size_t num_threads,
                                         const Budget& budget) {
  std::optional<CoverageSketchIndex> sketch;
  Result<HimorIndex> built =
      options_.component_scoped
          ? HimorIndex::BuildScoped(model_, base_, lca_, options_.theta,
                                    seed, options_.himor_max_rank, budget,
                                    comp_size_of_node_, options_.sketch_bits,
                                    &sketch)
          : HimorIndex::BuildParallel(model_, base_, lca_, options_.theta,
                                      seed, options_.himor_max_rank,
                                      num_threads, budget,
                                      options_.sketch_bits, &sketch);
  if (!built.ok()) return built.status();
  himor_ = std::move(built).value();
  AdoptSketch(std::move(sketch));
  return Status::Ok();
}

}  // namespace cod
