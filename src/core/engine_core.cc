#include "core/engine_core.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/query_workspace.h"

namespace cod {
namespace {

DiffusionModel MakeModel(const Graph& g, DiffusionKind kind) {
  switch (kind) {
    case DiffusionKind::kIndependentCascade:
      return DiffusionModel::WeightedCascadeIc(g);
    case DiffusionKind::kLinearThreshold:
      return DiffusionModel::WeightedCascadeLt(g);
  }
  COD_CHECK(false);
  return DiffusionModel::WeightedCascadeIc(g);
}

// Non-owning alias: the caller guarantees the referent outlives the core.
template <typename T>
std::shared_ptr<const T> Alias(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &ref);
}

// A query that ran out of budget before producing an answer.
CodResult BudgetExhaustedResult(StatusCode code, CodVariant variant) {
  CodResult result;
  result.code = code;
  result.variant_served = variant;
  return result;
}

}  // namespace

EngineCore::EngineCore(std::shared_ptr<const Graph> graph,
                       std::shared_ptr<const AttributeTable> attrs,
                       const EngineOptions& options)
    : graph_(std::move(graph)),
      attrs_(std::move(attrs)),
      options_(options),
      model_(MakeModel(*graph_, options.diffusion)),
      base_(AgglomerativeCluster(*graph_)),
      lca_(base_) {
  COD_CHECK_EQ(graph_->NumNodes(), attrs_->NumNodes());
  COD_CHECK(graph_->NumNodes() >= 2);
}

EngineCore::EngineCore(const Graph& graph, const AttributeTable& attrs,
                       const EngineOptions& options)
    : EngineCore(Alias(graph), Alias(attrs), options) {}

CodChain EngineCore::BuildCoduChain(NodeId q) const {
  return BuildChainFromDendrogram(base_, q);
}

CodChain EngineCore::BuildCodrChain(NodeId q, AttributeId attr) const {
  if (options_.cache_codr_hierarchies) {
    std::shared_ptr<const Dendrogram> cached;
    {
      std::lock_guard<std::mutex> lock(codr_mu_);
      auto it = codr_cache_.find(attr);
      if (it != codr_cache_.end()) cached = it->second;
    }
    if (cached == nullptr) {
      // Build outside the lock (clustering is the expensive part); racing
      // builders produce identical dendrograms and the first insert wins.
      auto built = std::make_shared<const Dendrogram>(
          GlobalRecluster(*graph_, *attrs_, attr, options_.transform));
      std::lock_guard<std::mutex> lock(codr_mu_);
      cached = codr_cache_.emplace(attr, std::move(built)).first->second;
    }
    return BuildChainFromDendrogram(*cached, q);
  }
  const Dendrogram dendrogram =
      GlobalRecluster(*graph_, *attrs_, attr, options_.transform);
  return BuildChainFromDendrogram(dendrogram, q);
}

LoreChain EngineCore::BuildCodlChain(NodeId q, AttributeId attr) const {
  return BuildCodlChain(q, std::span<const AttributeId>(&attr, 1));
}

LoreChain EngineCore::BuildCodlChain(
    NodeId q, std::span<const AttributeId> attrs) const {
  return BuildCodlChainFromScores(
      ComputeReclusteringScores(*graph_, *attrs_, base_, lca_, q, attrs), q,
      attrs);
}

LoreChain EngineCore::BuildCodlChainFromScores(
    const LoreScores& scores, NodeId q,
    std::span<const AttributeId> attrs) const {
  COD_DCHECK(scores.code == StatusCode::kOk);
  LoreChain out;
  out.c_ell = scores.Selected();

  // Locally recluster C_ell's induced subgraph with attribute weights.
  const auto members = base_.Members(out.c_ell);
  const InducedSubgraph sub = BuildAttributeWeightedSubgraph(
      *graph_, *attrs_, attrs, options_.transform, members);
  const Dendrogram local = AgglomerativeCluster(sub.graph);
  NodeId local_q = kInvalidNode;
  for (size_t i = 0; i < sub.to_parent.size(); ++i) {
    if (sub.to_parent[i] == q) {
      local_q = static_cast<NodeId>(i);
      break;
    }
  }
  COD_CHECK(local_q != kInvalidNode);
  out.chain = BuildChainFromDendrogram(local, local_q, kInvalidCommunity,
                                       &sub.to_parent, graph_->NumNodes());
  out.local_levels = out.chain.NumLevels();

  // Splice the untouched global ancestors of C_ell on top. Each ancestor's
  // fresh nodes are the prefix + suffix of its member span around its
  // on-path child's span (nested leaf intervals).
  const NodeId* prev_begin = members.data();
  const NodeId* prev_end = members.data() + members.size();
  std::vector<NodeId> fresh;
  for (CommunityId a = base_.Parent(out.c_ell); a != kInvalidCommunity;
       a = base_.Parent(a)) {
    const auto span = base_.Members(a);
    const NodeId* begin = span.data();
    const NodeId* end = span.data() + span.size();
    COD_CHECK(begin <= prev_begin && prev_end <= end);
    fresh.assign(begin, prev_begin);
    fresh.insert(fresh.end(), prev_end, end);
    AppendLevelWithNewMembers(&out.chain, fresh,
                              static_cast<uint32_t>(span.size()));
    prev_begin = begin;
    prev_end = end;
  }
  return out;
}

CodResult EngineCore::EvaluateChain(const CodChain& chain, NodeId q,
                                    uint32_t k, QueryWorkspace& ws) const {
  COD_DCHECK(ws.bound_core() == this);  // Rebind the workspace to this core
  const ChainEvalOutcome outcome =
      ws.evaluator().Evaluate(chain, q, k, ws.rng(), ws.budget());
  CodResult result;
  result.num_levels = chain.NumLevels();
  result.code = outcome.code;
  if (outcome.code == StatusCode::kOk && outcome.best_level >= 0) {
    result.found = true;
    result.rank = outcome.rank_at_best;
    result.members =
        chain.MembersOfLevel(static_cast<uint32_t>(outcome.best_level));
  }
  return result;
}

CodResult EngineCore::QueryCodU(NodeId q, uint32_t k,
                                QueryWorkspace& ws) const {
  CodResult result = EvaluateChain(BuildCoduChain(q), q, k, ws);
  result.variant_served = CodVariant::kCodU;
  return result;
}

CodResult EngineCore::QueryCodR(NodeId q, AttributeId attr, uint32_t k,
                                QueryWorkspace& ws) const {
  CodResult result = EvaluateChain(BuildCodrChain(q, attr), q, k, ws);
  result.variant_served = CodVariant::kCodR;
  return result;
}

CodResult EngineCore::QueryCodR(NodeId q, std::span<const AttributeId> attrs,
                                uint32_t k, QueryWorkspace& ws) const {
  // Topic-set CODR never uses the per-attribute cache.
  const Dendrogram dendrogram =
      GlobalRecluster(*graph_, *attrs_, attrs, options_.transform);
  CodResult result =
      EvaluateChain(BuildChainFromDendrogram(dendrogram, q), q, k, ws);
  result.variant_served = CodVariant::kCodR;
  return result;
}

CodResult EngineCore::QueryCodLMinus(NodeId q, AttributeId attr, uint32_t k,
                                     QueryWorkspace& ws) const {
  return QueryCodLMinus(q, std::span<const AttributeId>(&attr, 1), k, ws);
}

CodResult EngineCore::QueryCodLMinus(NodeId q,
                                     std::span<const AttributeId> attrs,
                                     uint32_t k, QueryWorkspace& ws) const {
  const LoreScores scores = ComputeReclusteringScores(
      *graph_, *attrs_, base_, lca_, q, attrs, ws.budget());
  if (scores.code != StatusCode::kOk) {
    return BudgetExhaustedResult(scores.code, CodVariant::kCodLMinus);
  }
  CodResult result = EvaluateChain(
      BuildCodlChainFromScores(scores, q, attrs).chain, q, k, ws);
  result.variant_served = CodVariant::kCodLMinus;
  return result;
}

CodResult EngineCore::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                                QueryWorkspace& ws) const {
  return QueryCodL(q, std::span<const AttributeId>(&attr, 1), k, ws);
}

CodResult EngineCore::QueryCodL(NodeId q, std::span<const AttributeId> attrs,
                                uint32_t k, QueryWorkspace& ws) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  const LoreScores scores = ComputeReclusteringScores(
      *graph_, *attrs_, base_, lca_, q, attrs, ws.budget());
  if (scores.code != StatusCode::kOk) {
    return BudgetExhaustedResult(scores.code, CodVariant::kCodL);
  }
  const CommunityId c_ell = scores.Selected();

  // Fast path: some untouched ancestor of C_ell already has q in its top-k.
  if (const HimorIndex::Entry* hit =
          himor_->FindTopKAncestor(q, c_ell, k, base_)) {
    CodResult result;
    result.found = true;
    result.answered_from_index = true;
    result.variant_served = CodVariant::kCodL;
    result.rank = hit->rank;
    const auto span = base_.Members(hit->community);
    result.members.assign(span.begin(), span.end());
    result.num_levels =
        base_.Depth(base_.Parent(base_.LeafOf(q)));  // chain length consulted
    return result;
  }

  // Slow path: locally recluster C_ell and run compressed evaluation on the
  // attribute-aware chain inside it.
  const auto members = base_.Members(c_ell);
  const InducedSubgraph sub = BuildAttributeWeightedSubgraph(
      *graph_, *attrs_, attrs, options_.transform, members);
  const Dendrogram local = AgglomerativeCluster(sub.graph);
  NodeId local_q = kInvalidNode;
  for (size_t i = 0; i < sub.to_parent.size(); ++i) {
    if (sub.to_parent[i] == q) {
      local_q = static_cast<NodeId>(i);
      break;
    }
  }
  COD_CHECK(local_q != kInvalidNode);
  const CodChain chain = BuildChainFromDendrogram(
      local, local_q, kInvalidCommunity, &sub.to_parent, graph_->NumNodes());
  CodResult result = EvaluateChain(chain, q, k, ws);
  result.variant_served = CodVariant::kCodL;
  return result;
}

CodResult EngineCore::QueryCodUIndexed(NodeId q, uint32_t k) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  CodResult result;
  result.variant_served = CodVariant::kCodUIndexed;
  result.num_levels = base_.Depth(base_.Parent(base_.LeafOf(q)));
  const HimorIndex::Entry* hit =
      himor_->FindTopKAncestor(q, base_.Parent(base_.LeafOf(q)), k, base_);
  if (hit == nullptr) return result;
  result.found = true;
  result.answered_from_index = true;
  result.rank = hit->rank;
  const auto span = base_.Members(hit->community);
  result.members.assign(span.begin(), span.end());
  return result;
}

QueryExplanation EngineCore::ExplainCodL(NodeId q, AttributeId attr,
                                         uint32_t k,
                                         QueryWorkspace& ws) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  QueryExplanation explanation;
  explanation.scores =
      ComputeReclusteringScores(*graph_, *attrs_, base_, lca_, q, attr);
  const CommunityId c_ell = explanation.scores.Selected();
  explanation.c_ell_size = base_.LeafCount(c_ell);

  if (const HimorIndex::Entry* hit =
          himor_->FindTopKAncestor(q, c_ell, k, base_)) {
    explanation.index_hit = true;
    explanation.index_community = hit->community;
    explanation.index_rank = hit->rank;
    explanation.result.found = true;
    explanation.result.answered_from_index = true;
    explanation.result.variant_served = CodVariant::kCodL;
    explanation.result.rank = hit->rank;
    const auto span = base_.Members(hit->community);
    explanation.result.members.assign(span.begin(), span.end());
    return explanation;
  }
  // Fall back to the uninstrumented slow path (identical code path).
  explanation.result = QueryCodL(q, attr, k, ws);
  return explanation;
}

std::string QueryExplanation::ToString(const Dendrogram& hierarchy) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "LORE chain: %zu levels; reclustering scores:\n",
                scores.chain.size());
  out += line;
  for (size_t i = 0; i < scores.chain.size(); ++i) {
    std::snprintf(line, sizeof(line), "  level %2zu  |C|=%-7u r=%.4f%s\n", i,
                  hierarchy.LeafCount(scores.chain[i]), scores.score[i],
                  i == scores.selected ? "  <- C_ell" : "");
    out += line;
  }
  if (index_hit) {
    std::snprintf(line, sizeof(line),
                  "HIMOR hit: community of %u nodes above C_ell, stored rank "
                  "%u\n",
                  hierarchy.LeafCount(index_community), index_rank + 1);
    out += line;
  } else {
    out += "HIMOR miss: evaluated the reclustered chain inside C_ell\n";
  }
  if (result.found) {
    std::snprintf(line, sizeof(line),
                  "result: characteristic community of %zu members, query "
                  "rank #%u\n",
                  result.members.size(), result.rank + 1);
    out += line;
  } else {
    out += "result: no characteristic community\n";
  }
  return out;
}

std::vector<Promoter> EngineCore::FindTopPromoters(AttributeId attr,
                                                   size_t count,
                                                   uint32_t k) const {
  COD_CHECK(himor_.has_value());  // build/load HIMOR during setup
  COD_CHECK(count >= 1);
  std::vector<Promoter> promoters;
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    if (!attrs_->Has(v, attr)) continue;
    // Largest base-hierarchy community where v is top-k: the whole chain is
    // eligible, so scan from the root side of v's index entries.
    const HimorIndex::Entry* hit = himor_->FindTopKAncestor(
        v, base_.Parent(base_.LeafOf(v)), k, base_);
    if (hit == nullptr) continue;
    promoters.push_back(Promoter{v, hit->community,
                                 base_.LeafCount(hit->community), hit->rank});
  }
  std::sort(promoters.begin(), promoters.end(),
            [](const Promoter& a, const Promoter& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.node < b.node;
            });
  if (promoters.size() > count) promoters.resize(count);
  return promoters;
}

Status EngineCore::SaveHimor(const std::string& path) const {
  if (!himor_.has_value()) {
    return Status::FailedPrecondition("no HIMOR index built");
  }
  return himor_->Save(path);
}

Status EngineCore::LoadHimor(const std::string& path) {
  Result<HimorIndex> loaded = HimorIndex::Load(path);
  if (!loaded.ok()) return loaded.status();
  if (loaded->NumNodes() != graph_->NumNodes()) {
    return Status::InvalidArgument(
        "HIMOR index was built for a different graph (node count mismatch)");
  }
  himor_ = std::move(loaded).value();
  return Status::Ok();
}

void EngineCore::BuildHimor(Rng& rng) {
  himor_ = HimorIndex::Build(model_, base_, lca_, options_.theta, rng,
                             options_.himor_max_rank);
}

void EngineCore::BuildHimorParallel(uint64_t seed, size_t num_threads) {
  himor_ = HimorIndex::BuildParallel(model_, base_, lca_, options_.theta,
                                     seed, options_.himor_max_rank,
                                     num_threads);
}

Status EngineCore::TryBuildHimor(Rng& rng, const Budget& budget) {
  Result<HimorIndex> built =
      HimorIndex::Build(model_, base_, lca_, options_.theta, rng,
                        options_.himor_max_rank, budget);
  if (!built.ok()) return built.status();
  himor_ = std::move(built).value();
  return Status::Ok();
}

Status EngineCore::TryBuildHimorParallel(uint64_t seed, size_t num_threads,
                                         const Budget& budget) {
  Result<HimorIndex> built = HimorIndex::BuildParallel(
      model_, base_, lca_, options_.theta, seed, options_.himor_max_rank,
      num_threads, budget);
  if (!built.ok()) return built.status();
  himor_ = std::move(built).value();
  return Status::Ok();
}

}  // namespace cod
