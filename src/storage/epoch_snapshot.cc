#include "storage/epoch_snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/binary_io.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "graph/graph_io.h"
#include "hierarchy/dendrogram_io.h"

namespace cod {
namespace {

constexpr uint32_t kMagic = 0x434F4453;  // "CODS"
// v2: kMeta section gained options_fingerprint (the ServiceOptions
// fingerprint, which covers the sharding layout). v3: optional kSketch
// section (the coverage-sketch index co-built with HIMOR). Older files fail
// the version check and recover via quarantine + cold rebuild.
constexpr uint32_t kVersion = 3;

constexpr uint32_t kFlagDegraded = 1u << 0;

enum SectionId : uint32_t {
  kMeta = 1,
  kGraph = 2,
  kAttributes = 3,
  kHierarchy = 4,
  kHimor = 5,
  kSketch = 6,
};

const char* SectionName(uint32_t id) {
  switch (id) {
    case kMeta:
      return "meta";
    case kGraph:
      return "graph";
    case kAttributes:
      return "attributes";
    case kHierarchy:
      return "hierarchy";
    case kHimor:
      return "himor";
    case kSketch:
      return "sketch";
  }
  return "unknown";
}

// One section-table row; 32 bytes on disk (explicit padding so the struct
// can be memcpy'd as a POD without layout surprises).
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved0 = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  uint32_t reserved1 = 0;
};
static_assert(sizeof(SectionEntry) == 32);

// Bytes before the payloads: fixed header + table + header CRC.
size_t HeaderSize(size_t section_count) {
  return 2 * sizeof(uint32_t)        // magic, version
         + 3 * sizeof(uint64_t)      // epoch, build_index, seed
         + 2 * sizeof(uint32_t)      // flags, section_count
         + section_count * sizeof(SectionEntry) + sizeof(uint32_t);  // crc
}

void SerializeMeta(const EpochSnapshotMeta& meta, BinaryBufferWriter& out) {
  out.WritePod<uint32_t>(meta.engine_k);
  out.WritePod<uint32_t>(meta.engine_theta);
  out.WritePod<uint32_t>(meta.himor_max_rank);
  out.WritePod<uint8_t>(meta.diffusion);
  out.WritePod<uint64_t>(meta.num_nodes);
  out.WritePod<uint64_t>(meta.num_edges);
  out.WritePod<uint64_t>(meta.options_fingerprint);  // v2
}

bool DeserializeMeta(BinarySpanReader& in, EpochSnapshotMeta* meta) {
  if (!in.ReadPod(&meta->engine_k) || !in.ReadPod(&meta->engine_theta) ||
      !in.ReadPod(&meta->himor_max_rank) || !in.ReadPod(&meta->diffusion) ||
      !in.ReadPod(&meta->num_nodes) || !in.ReadPod(&meta->num_edges) ||
      !in.ReadPod(&meta->options_fingerprint)) {
    return false;
  }
  if (meta->diffusion > 1) return in.Fail("unknown diffusion kind");
  return true;
}

Status CloseAndFail(int fd, const std::string& tmp, const std::string& why) {
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return Status::IoError(why);
}

}  // namespace

std::string EncodeEpochSnapshot(EpochSnapshotMeta meta,
                                const EngineCore& core) {
  return EncodeEpochSnapshot(std::move(meta), core, /*cache=*/nullptr,
                             /*sections_reused=*/nullptr);
}

std::string EncodeEpochSnapshot(EpochSnapshotMeta meta, const EngineCore& core,
                                SnapshotSectionCache* cache,
                                uint64_t* sections_reused) {
  // The fingerprint always reflects the core actually being persisted.
  const EngineOptions& opts = core.options();
  meta.engine_k = opts.k;
  meta.engine_theta = opts.theta;
  meta.himor_max_rank = opts.himor_max_rank;
  meta.diffusion = static_cast<uint8_t>(opts.diffusion);
  meta.num_nodes = core.graph().NumNodes();
  meta.num_edges = core.graph().NumEdges();
  meta.degraded = !core.index_present();

  struct Section {
    uint32_t id;
    std::string payload;
    uint32_t crc;
  };
  std::vector<Section> sections;
  uint64_t reused = 0;
  // One section: from the cache when the source object is the one the cache
  // was filled from (the published parts of a core are immutable, so pointer
  // identity implies byte identity), serialized and checksummed fresh — and
  // cached for the next epoch — otherwise.
  const auto add = [&](uint32_t id, const void* source,
                       SnapshotSectionCache::Entry* slot,
                       const auto& serialize) {
    if (slot != nullptr && slot->source == source && source != nullptr) {
      ++reused;
      sections.push_back(Section{id, slot->payload, slot->crc});
      return;
    }
    BinaryBufferWriter w;
    serialize(w);
    Section s{id, std::move(w).TakeBytes(), 0};
    s.crc = Crc32c(s.payload);
    if (slot != nullptr) {
      slot->source = source;
      slot->payload = s.payload;
      slot->crc = s.crc;
    }
    sections.push_back(std::move(s));
  };
  const auto slot = [&](SnapshotSectionCache::Entry SnapshotSectionCache::* m)
      -> SnapshotSectionCache::Entry* {
    return cache != nullptr ? &(cache->*m) : nullptr;
  };

  // Meta is a few dozen bytes and changes every epoch (epoch number,
  // ticket): always fresh, never cached.
  add(kMeta, nullptr, nullptr,
      [&](BinaryBufferWriter& w) { SerializeMeta(meta, w); });
  add(kGraph, &core.graph(), slot(&SnapshotSectionCache::graph),
      [&](BinaryBufferWriter& w) { SerializeGraph(core.graph(), w); });
  add(kAttributes, &core.attributes(), slot(&SnapshotSectionCache::attributes),
      [&](BinaryBufferWriter& w) { SerializeAttributes(core.attributes(), w); });
  add(kHierarchy, &core.base_hierarchy(), slot(&SnapshotSectionCache::hierarchy),
      [&](BinaryBufferWriter& w) {
        SerializeDendrogram(core.base_hierarchy(), w);
      });
  if (core.himor() != nullptr) {
    add(kHimor, core.himor(), slot(&SnapshotSectionCache::himor),
        [&](BinaryBufferWriter& w) { core.himor()->SerializeTo(w); });
  } else if (cache != nullptr) {
    // No HIMOR section this epoch, so nothing overwrites the slot: clear it
    // explicitly. Once cache->holder moves on, a later core's index could
    // be allocated at the stale address and alias the entry.
    cache->himor = SnapshotSectionCache::Entry{};
  }
  if (core.sketch() != nullptr) {
    add(kSketch, core.sketch(), slot(&SnapshotSectionCache::sketch),
        [&](BinaryBufferWriter& w) { core.sketch()->SerializeTo(w); });
  } else if (cache != nullptr) {
    cache->sketch = SnapshotSectionCache::Entry{};  // same ABA guard as himor
  }
  if (sections_reused != nullptr) *sections_reused += reused;

  BinaryBufferWriter header;
  header.WritePod<uint32_t>(kMagic);
  header.WritePod<uint32_t>(kVersion);
  header.WritePod<uint64_t>(meta.epoch);
  header.WritePod<uint64_t>(meta.build_index);
  header.WritePod<uint64_t>(meta.seed);
  header.WritePod<uint32_t>(meta.degraded ? kFlagDegraded : 0);
  header.WritePod<uint32_t>(static_cast<uint32_t>(sections.size()));
  uint64_t offset = HeaderSize(sections.size());
  for (const Section& s : sections) {
    SectionEntry entry;
    entry.id = s.id;
    entry.offset = offset;
    entry.length = s.payload.size();
    entry.crc = s.crc;
    header.WritePod(entry);
    offset += entry.length;
  }
  header.WritePod<uint32_t>(Crc32c(header.bytes()));

  std::string file = std::move(header).TakeBytes();
  file.reserve(offset);
  for (Section& s : sections) file += s.payload;
  return file;
}

Result<DecodedEpochSnapshot> DecodeEpochSnapshot(std::string_view bytes,
                                                 const std::string& origin) {
  BinarySpanReader in(bytes, origin);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!in.ReadPod(&magic) || magic != kMagic) {
    return Status::InvalidArgument(origin +
                                   ": not a codlib epoch snapshot file");
  }
  if (!in.ReadPod(&version) || version != kVersion) {
    return Status::InvalidArgument(origin +
                                   ": unsupported epoch snapshot version");
  }
  DecodedEpochSnapshot snap;
  uint32_t flags = 0;
  uint32_t section_count = 0;
  if (!in.ReadPod(&snap.meta.epoch) || !in.ReadPod(&snap.meta.build_index) ||
      !in.ReadPod(&snap.meta.seed) || !in.ReadPod(&flags) ||
      !in.ReadPod(&section_count)) {
    return in.status();
  }
  if ((flags & ~kFlagDegraded) != 0) {
    in.Fail("unknown snapshot flags");
    return in.status();
  }
  snap.meta.degraded = (flags & kFlagDegraded) != 0;
  // v3 writes at most 6 sections; a larger count is corruption, not growth
  // (growth bumps the version).
  if (section_count == 0 || section_count > 8) {
    in.Fail("implausible section count");
    return in.status();
  }
  std::vector<SectionEntry> table(section_count);
  for (SectionEntry& entry : table) {
    if (!in.ReadPod(&entry)) return in.status();
  }
  const size_t header_end = HeaderSize(section_count);
  uint32_t stored_header_crc = 0;
  if (!in.ReadPod(&stored_header_crc)) return in.status();
  COD_CHECK_EQ(in.offset(), header_end);
  if (Crc32c(bytes.substr(0, header_end - sizeof(uint32_t))) !=
      stored_header_crc) {
    return Status::InvalidArgument(origin + ": snapshot header CRC mismatch");
  }

  // Geometry and integrity of every section before interpreting any of
  // them; ids must be unique so "first match" below is unambiguous.
  for (size_t i = 0; i < table.size(); ++i) {
    const SectionEntry& entry = table[i];
    if (entry.offset < header_end || entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return Status::InvalidArgument(
          origin + ": section " + SectionName(entry.id) +
          " extends past the end of the file");
    }
    for (size_t j = 0; j < i; ++j) {
      if (table[j].id == entry.id) {
        return Status::InvalidArgument(origin + ": duplicate section " +
                                       SectionName(entry.id));
      }
    }
    if (Crc32c(bytes.substr(entry.offset, entry.length)) != entry.crc) {
      return Status::InvalidArgument(origin + ": section " +
                                     SectionName(entry.id) +
                                     " CRC mismatch");
    }
  }
  const auto find_section = [&](uint32_t id) -> const SectionEntry* {
    for (const SectionEntry& entry : table) {
      if (entry.id == id) return &entry;
    }
    return nullptr;
  };
  const auto section_reader = [&](const SectionEntry& entry) {
    return BinarySpanReader(bytes.substr(entry.offset, entry.length),
                            origin + " section " + SectionName(entry.id));
  };
  for (uint32_t id : {kMeta, kGraph, kAttributes, kHierarchy}) {
    if (find_section(id) == nullptr) {
      return Status::InvalidArgument(origin + ": missing section " +
                                     SectionName(id));
    }
  }
  const SectionEntry* himor_entry = find_section(kHimor);
  if ((himor_entry != nullptr) == snap.meta.degraded) {
    return Status::InvalidArgument(
        origin + ": HIMOR section presence contradicts the degraded flag");
  }
  const SectionEntry* sketch_entry = find_section(kSketch);
  if (sketch_entry != nullptr && himor_entry == nullptr) {
    return Status::InvalidArgument(
        origin + ": sketch section without the HIMOR index it belongs to");
  }

  // Decode, requiring each decoder to consume its section exactly.
  {
    BinarySpanReader meta_in = section_reader(*find_section(kMeta));
    if (!DeserializeMeta(meta_in, &snap.meta)) return meta_in.status();
    if (!meta_in.exhausted()) {
      meta_in.Fail("trailing bytes");
      return meta_in.status();
    }
  }
  {
    BinarySpanReader graph_in = section_reader(*find_section(kGraph));
    Result<Graph> graph = DeserializeGraph(graph_in);
    if (!graph.ok()) return graph.status();
    if (!graph_in.exhausted()) {
      graph_in.Fail("trailing bytes");
      return graph_in.status();
    }
    snap.graph = std::move(graph).value();
  }
  {
    BinarySpanReader attrs_in = section_reader(*find_section(kAttributes));
    Result<AttributeTable> attrs = DeserializeAttributes(attrs_in);
    if (!attrs.ok()) return attrs.status();
    if (!attrs_in.exhausted()) {
      attrs_in.Fail("trailing bytes");
      return attrs_in.status();
    }
    snap.attributes = std::move(attrs).value();
  }
  {
    BinarySpanReader tree_in = section_reader(*find_section(kHierarchy));
    Result<Dendrogram> tree = DeserializeDendrogram(tree_in);
    if (!tree.ok()) return tree.status();
    if (!tree_in.exhausted()) {
      tree_in.Fail("trailing bytes");
      return tree_in.status();
    }
    snap.hierarchy.emplace(std::move(tree).value());
  }
  if (himor_entry != nullptr) {
    BinarySpanReader himor_in = section_reader(*himor_entry);
    Result<HimorIndex> himor = HimorIndex::Deserialize(himor_in);
    if (!himor.ok()) return himor.status();
    if (!himor_in.exhausted()) {
      himor_in.Fail("trailing bytes");
      return himor_in.status();
    }
    snap.himor.emplace(std::move(himor).value());
  }
  if (sketch_entry != nullptr) {
    BinarySpanReader sketch_in = section_reader(*sketch_entry);
    Result<CoverageSketchIndex> sketch =
        CoverageSketchIndex::Deserialize(sketch_in);
    if (!sketch.ok()) return sketch.status();
    if (!sketch_in.exhausted()) {
      sketch_in.Fail("trailing bytes");
      return sketch_in.status();
    }
    snap.sketch.emplace(std::move(sketch).value());
  }

  // Cross-section consistency: the fingerprint and every decoded part must
  // describe the same world.
  const uint64_t num_nodes = snap.graph.NumNodes();
  if (snap.meta.num_nodes != num_nodes ||
      snap.meta.num_edges != snap.graph.NumEdges() ||
      snap.attributes.NumNodes() != num_nodes ||
      snap.hierarchy->NumLeaves() != num_nodes ||
      (snap.himor.has_value() && snap.himor->NumNodes() != num_nodes) ||
      (snap.sketch.has_value() &&
       (snap.sketch->NumNodes() != num_nodes ||
        snap.sketch->theta() != snap.meta.engine_theta))) {
    return Status::InvalidArgument(origin +
                                   ": sections describe different graphs");
  }
  return snap;
}

Status WriteEpochSnapshotFile(const std::string& path,
                              std::string_view bytes) {
  if (COD_FAILPOINT("storage/snapshot_write")) {
    return Status::IoError("failpoint storage/snapshot_write armed");
  }
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return CloseAndFail(fd, tmp,
                          "write to " + tmp + " failed: " +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  // The fsync failpoint models a crash/disk failure between writing the
  // bytes and making them durable: the temp file is discarded, the final
  // path untouched.
  if (COD_FAILPOINT("storage/snapshot_fsync")) {
    return CloseAndFail(fd, tmp, "failpoint storage/snapshot_fsync armed");
  }
  if (::fsync(fd) != 0) {
    return CloseAndFail(fd, tmp,
                        "fsync " + tmp + " failed: " + std::strerror(errno));
  }
  if (::close(fd) != 0) {
    return CloseAndFail(-1, tmp,
                        "close " + tmp + " failed: " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return CloseAndFail(-1, tmp,
                        "rename " + tmp + " -> " + path + " failed: " +
                            std::strerror(errno));
  }
  // Make the rename itself durable: fsync the parent directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return Status::IoError("cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  const bool dir_synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  if (!dir_synced) {
    return Status::IoError("fsync directory " + dir + " failed");
  }
  return Status::Ok();
}

Result<DecodedEpochSnapshot> LoadEpochSnapshotFile(const std::string& path) {
  if (COD_FAILPOINT("storage/snapshot_load")) {
    return Status::IoError("failpoint storage/snapshot_load armed");
  }
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  std::string bytes;
  if (!reader.ReadRemaining(&bytes)) return reader.status();
  return DecodeEpochSnapshot(bytes, path);
}

}  // namespace cod
