// Durable epoch snapshots: the on-disk container for one published
// EngineCore epoch, and the crash-safe file protocol around it.
//
// Container layout (version 2, little-endian; see DESIGN.md Sec. 13; v2
// added options_fingerprint to the kMeta section):
//
//   u32 magic "CODS" | u32 version
//   u64 epoch | u64 build_index | u64 seed | u32 flags | u32 section_count
//   section_count x { u32 id | u32 reserved | u64 offset | u64 length
//                   | u32 crc32c | u32 reserved }
//   u32 header_crc          (CRC32C over every byte above)
//   ...section payloads...  (at the offsets the table declares)
//
// Sections: kMeta (engine-option and topology fingerprint), kGraph,
// kAttributes, kHierarchy, and — unless the epoch was published
// index-absent degraded (flags bit 0) — kHimor, plus kSketch (v3) when the
// core carries a coverage-sketch index (requires kHimor: the sketch is
// co-built with the index and meaningless without it). Each section's CRC32C
// covers its exact payload bytes, so a bit flip anywhere in the file is
// caught either by the header CRC (metadata damage) or by one section CRC
// (payload damage) before any of the payload is interpreted. The payload
// decoders (graph_io.h, dendrogram_io.h, himor.h) then re-validate
// structure on top, so even a corruption that forges both CRCs cannot
// crash the process or materialize an invalid object.
//
// Crash-safe publication: WriteEpochSnapshotFile writes a temp file in the
// target directory, fsyncs it, atomically renames it over the final path,
// and fsyncs the parent directory. A crash at ANY point leaves either the
// complete old state or the complete new file — never a partially visible
// snapshot (a leftover temp file is ignored by loaders and cleaned by
// SnapshotStore).
//
// Failpoints: "storage/snapshot_write" (before the temp file is written),
// "storage/snapshot_fsync" (at the data fsync), "storage/snapshot_load"
// (before a file is read).

#ifndef COD_STORAGE_EPOCH_SNAPSHOT_H_
#define COD_STORAGE_EPOCH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/engine_core.h"
#include "graph/attributes.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

// Epoch identity plus the compatibility fingerprint of the core that wrote
// the snapshot. Recovery refuses a snapshot whose fingerprint disagrees
// with the recovering service's options — a core restored under different
// engine parameters would silently answer differently.
struct EpochSnapshotMeta {
  uint64_t epoch = 0;
  uint64_t build_index = 0;  // rebuild ticket; seed + ticket = RNG stream
  uint64_t seed = 0;         // ServiceOptions::seed
  bool degraded = false;     // published index-absent (no kHimor section)
  // ServiceOptions::Fingerprint() of the service that wrote the snapshot
  // (container v2+). Covers everything that shapes answers INCLUDING the
  // sharding layout (num_shards, partitioner, component_scoped), so a mono
  // snapshot never warm-restores into a sharded service or vice versa.
  // Caller-set, like the identity fields above; 0 on legacy callers.
  uint64_t options_fingerprint = 0;

  // Engine fingerprint (the options that shape answers and index bytes).
  uint32_t engine_k = 0;
  uint32_t engine_theta = 0;
  uint32_t himor_max_rank = 0;
  uint8_t diffusion = 0;  // DiffusionKind

  // Topology fingerprint, cross-checked against the decoded sections.
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
};

// A fully decoded and validated snapshot. `himor` is empty exactly when
// meta.degraded — the index-absent epoch restores index-absent. `sketch` is
// present only when the writing core carried one (which implies himor);
// absence is normal (sketch_bits == 0, or the co-build was failpointed) and
// only disables pruning and the sketch rung, never answers.
struct DecodedEpochSnapshot {
  EpochSnapshotMeta meta;
  Graph graph;
  AttributeTable attributes;
  std::optional<Dendrogram> hierarchy;  // engaged on every successful decode
  std::optional<HimorIndex> himor;
  std::optional<CoverageSketchIndex> sketch;
};

// Per-section payload cache for delta snapshots. A section whose source
// object is the SAME OBJECT the cache serialized last time (pointer
// identity) has byte-identical payload and CRC — EngineCore parts are
// immutable once published — so the encoder copies the cached bytes
// instead of re-serializing and re-checksumming them. `holder` pins the
// core the cached pointers point into, so an address can never be
// recycled by a later epoch while its entry is still live (ABA). In the
// serving tier the attributes table is shared by every epoch of a
// service, so that section — typically the largest stable one — hits on
// every delta snapshot.
struct SnapshotSectionCache {
  struct Entry {
    const void* source = nullptr;
    std::string payload;
    uint32_t crc = 0;
  };
  std::shared_ptr<const EngineCore> holder;
  Entry graph;
  Entry attributes;
  Entry hierarchy;
  Entry himor;
  Entry sketch;
};

// Serializes `core` (graph, attributes, hierarchy, HIMOR when present) and
// `meta` into the container byte format. Pure in-memory encoding — no I/O.
// meta's fingerprint fields are filled from the core; callers set only the
// identity fields (epoch / build_index / seed / degraded).
std::string EncodeEpochSnapshot(EpochSnapshotMeta meta, const EngineCore& core);

// Cache-aware form: reuses and refreshes `cache` (which must outlive the
// call; pass the SAME cache across epochs of the same service), and adds
// the number of sections served from it to *sections_reused when set. The
// caller owns updating cache->holder to the shared_ptr of `core` AFTER
// encoding — the entries written here point into `core`.
std::string EncodeEpochSnapshot(EpochSnapshotMeta meta, const EngineCore& core,
                                SnapshotSectionCache* cache,
                                uint64_t* sections_reused);

// Decodes and validates `bytes`: header CRC, section table geometry, every
// section CRC, then the payload decoders' structural validation. Any
// corruption — bad magic, version skew, truncation, over-long lengths, CRC
// mismatch, inconsistent sections — produces a clean Status naming
// `origin` and what broke. Never crashes, never returns a partial object.
Result<DecodedEpochSnapshot> DecodeEpochSnapshot(std::string_view bytes,
                                                 const std::string& origin);

// Crash-safe write of `bytes` to `path`: temp file (same directory) ->
// fsync -> atomic rename -> fsync parent directory.
Status WriteEpochSnapshotFile(const std::string& path, std::string_view bytes);

// Reads and decodes one snapshot file. IoError when unreadable,
// InvalidArgument when corrupt (the caller decides whether to quarantine).
Result<DecodedEpochSnapshot> LoadEpochSnapshotFile(const std::string& path);

}  // namespace cod

#endif  // COD_STORAGE_EPOCH_SNAPSHOT_H_
