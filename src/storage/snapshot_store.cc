#include "storage/snapshot_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

namespace cod {
namespace {

namespace fs = std::filesystem;

constexpr char kSnapshotPrefix[] = "epoch-";
constexpr char kSnapshotSuffix[] = ".cods";

// Registry handles, resolved once per process (common/metrics.h idiom).
struct SnapshotSites {
  Counter* writes;
  Counter* write_failures;
  Counter* loads;
  Counter* quarantined;
  Counter* sections_reused;
  Gauge* bytes;
  Histogram* write_seconds;
  Histogram* load_seconds;
};

const SnapshotSites& Sites() {
  static const SnapshotSites sites = [] {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    SnapshotSites s{};
    s.writes = reg.GetCounter("cod_snapshot_writes_total");
    s.write_failures = reg.GetCounter("cod_snapshot_write_failures_total");
    s.loads = reg.GetCounter("cod_snapshot_loads_total");
    s.quarantined = reg.GetCounter("cod_snapshot_corrupt_quarantined_total");
    s.sections_reused = reg.GetCounter("cod_snapshot_sections_reused_total");
    s.bytes = reg.GetGauge("cod_snapshot_bytes");
    // Writes span tiny test worlds to multi-GB production epochs; stretch
    // the buckets past the default latency range.
    s.write_seconds =
        reg.GetHistogram("cod_snapshot_write_seconds",
                         HistogramOptions::Exponential(1e-4, 3.16, 14));
    s.load_seconds =
        reg.GetHistogram("cod_snapshot_load_seconds",
                         HistogramOptions::Exponential(1e-4, 3.16, 14));
    return s;
  }();
  return sites;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsSnapshotName(const std::string& name) {
  return name.size() > sizeof(kSnapshotPrefix) - 1 + sizeof(kSnapshotSuffix) -
                           1 &&
         name.rfind(kSnapshotPrefix, 0) == 0 &&
         name.compare(name.size() - (sizeof(kSnapshotSuffix) - 1),
                      sizeof(kSnapshotSuffix) - 1, kSnapshotSuffix) == 0;
}

}  // namespace

SnapshotStore::SnapshotStore(Options options)
    : options_(std::move(options)),
      age_gauge_("cod_snapshot_age_seconds", [this] {
        const int64_t last = last_write_ns_.load(std::memory_order_relaxed);
        if (last == 0) return -1.0;  // no snapshot written by this process
        return static_cast<double>(SteadyNowNs() - last) * 1e-9;
      }) {
  COD_CHECK(!options_.directory.empty());
  if (options_.keep == 0) options_.keep = 1;
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  // Interrupted writes leave ".tmp" files that were never visible as
  // snapshots; clear them so they cannot accumulate.
  for (const auto& entry : fs::directory_iterator(options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
    }
  }
}

std::string SnapshotStore::PathForEpoch(uint64_t epoch) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(epoch), kSnapshotSuffix);
  return options_.directory + "/" + name;
}

std::vector<std::string> SnapshotStore::ListSnapshots() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (IsSnapshotName(name)) names.push_back(name);
  }
  // Zero-padded epoch numbers make lexicographic order epoch order.
  std::sort(names.begin(), names.end());
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const std::string& name : names) {
    paths.push_back(options_.directory + "/" + name);
  }
  return paths;
}

Status SnapshotStore::Write(const EpochSnapshotMeta& meta,
                            const EngineCore& core) {
  const SnapshotSites& sites = Sites();
  ScopedTimer timer(sites.write_seconds);
  const std::string bytes = EncodeEpochSnapshot(meta, core);
  return FinishWrite(meta.epoch, bytes);
}

Status SnapshotStore::Write(const EpochSnapshotMeta& meta,
                            std::shared_ptr<const EngineCore> core) {
  COD_CHECK(core != nullptr);
  const SnapshotSites& sites = Sites();
  ScopedTimer timer(sites.write_seconds);
  uint64_t reused = 0;
  const std::string bytes =
      EncodeEpochSnapshot(meta, *core, &section_cache_, &reused);
  // Re-pin immediately after encoding: the refreshed cache entries point
  // into THIS core, and the hit counter stands even if the file write below
  // fails (the encode work was saved regardless).
  section_cache_.holder = std::move(core);
  if (reused != 0) sites.sections_reused->Increment(reused);
  return FinishWrite(meta.epoch, bytes);
}

Status SnapshotStore::FinishWrite(uint64_t epoch, const std::string& bytes) {
  const SnapshotSites& sites = Sites();
  const Status status = WriteEpochSnapshotFile(PathForEpoch(epoch), bytes);
  if (!status.ok()) {
    sites.write_failures->Increment();
    return status;
  }
  sites.writes->Increment();
  sites.bytes->Set(static_cast<double>(bytes.size()));
  last_write_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  PruneOld();
  return Status::Ok();
}

void SnapshotStore::PruneOld() {
  std::vector<std::string> paths = ListSnapshots();
  if (paths.size() <= options_.keep) return;
  std::error_code ec;
  for (size_t i = 0; i + options_.keep < paths.size(); ++i) {
    fs::remove(paths[i], ec);
  }
}

Result<SnapshotStore::LoadedSnapshot> SnapshotStore::LoadNewest() {
  const SnapshotSites& sites = Sites();
  ScopedTimer timer(sites.load_seconds);
  std::vector<std::string> paths = ListSnapshots();
  Status last_error = Status::NotFound("no snapshot in " + options_.directory);
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    Result<DecodedEpochSnapshot> snap = LoadEpochSnapshotFile(*it);
    if (snap.ok()) {
      sites.loads->Increment();
      return LoadedSnapshot{std::move(snap).value(), *it};
    }
    last_error = snap.status();
    if (snap.status().code() == StatusCode::kInvalidArgument) {
      // Provably corrupt bytes: quarantine so the file is never retried,
      // never pruned silently, and available for forensics — then fall back
      // to the next-older snapshot.
      std::error_code ec;
      fs::rename(*it, *it + ".corrupt", ec);
      sites.quarantined->Increment();
    }
    // kIoError (unreadable / failpoint) also falls through to an older
    // snapshot, but without quarantining: the bytes were never proven bad.
  }
  if (last_error.code() == StatusCode::kNotFound) return last_error;
  return Status::NotFound("no decodable snapshot in " + options_.directory +
                          " (last error: " + last_error.message() + ")");
}

}  // namespace cod
