// SnapshotStore: a directory of durable epoch snapshots with bounded
// retention, corruption quarantine, and recovery fallback.
//
// Files are named "epoch-<20-digit epoch>.cods" so lexicographic order IS
// epoch order; anything else in the directory (temp files from interrupted
// writes, quarantined ".corrupt" files, unrelated data) is never read as a
// snapshot. Write() encodes, publishes crash-safely (see
// storage/epoch_snapshot.h), then prunes snapshots beyond `keep`.
//
// LoadNewest() walks snapshots newest-first. A file that fails to DECODE
// (bad magic, version skew, truncation, any CRC mismatch, structural
// damage) is quarantined — renamed to "<name>.corrupt" so it can never be
// retried or pruned silently, but stays on disk for forensics — and the
// next-older snapshot is tried. Only when every snapshot is exhausted does
// recovery give up (kNotFound: the caller falls back to a cold rebuild).
// An unreadable file (open/read error) is NOT quarantined: transient I/O
// errors must not destroy good snapshots.
//
// Metrics: cod_snapshot_writes_total, cod_snapshot_write_failures_total,
// cod_snapshot_loads_total, cod_snapshot_corrupt_quarantined_total;
// cod_snapshot_bytes / cod_snapshot_age_seconds gauges (age is scrape-time,
// seconds since this process's last successful Write);
// cod_snapshot_write_seconds / cod_snapshot_load_seconds histograms.

#ifndef COD_STORAGE_SNAPSHOT_STORE_H_
#define COD_STORAGE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/epoch_snapshot.h"

namespace cod {

class SnapshotStore {
 public:
  struct Options {
    std::string directory;
    // Snapshots retained after each successful write (>= 1). Older ones are
    // deleted; quarantined ".corrupt" files are never touched.
    size_t keep = 2;
  };

  // Creates `directory` if missing and removes stale ".tmp" leftovers from
  // interrupted writes (they were never visible as snapshots).
  explicit SnapshotStore(Options options);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Encodes `core` + `meta` and crash-safely publishes it as the snapshot
  // for meta.epoch, then prunes beyond Options::keep. Not thread-safe
  // against itself — callers serialize writes (DynamicCodService runs them
  // on a maintenance task with its own ordering lock).
  Status Write(const EpochSnapshotMeta& meta, const EngineCore& core);

  // Delta-snapshot form: sections whose source object is shared with the
  // previously written core (pointer identity — the store keeps the
  // previous core alive to make that sound, see SnapshotSectionCache) are
  // copied from the store's section cache instead of re-serialized and
  // re-checksummed. The file bytes are identical either way; reuse only
  // cuts encode time, and cod_snapshot_sections_reused_total counts the
  // hits. Same serialization contract as the reference overload.
  Status Write(const EpochSnapshotMeta& meta,
               std::shared_ptr<const EngineCore> core);

  struct LoadedSnapshot {
    DecodedEpochSnapshot snapshot;
    std::string path;  // the file that recovered
  };

  // Newest decodable snapshot, quarantining corrupt ones along the way.
  // kNotFound when no snapshot survives.
  Result<LoadedSnapshot> LoadNewest();

  // Snapshot file paths, oldest first (".corrupt" and ".tmp" excluded).
  std::vector<std::string> ListSnapshots() const;

  const std::string& directory() const { return options_.directory; }

  // Test hook: the path Write() would use for `epoch`.
  std::string PathForEpoch(uint64_t epoch) const;

 private:
  Options options_;
  void PruneOld();
  // Shared tail of both Write overloads: crash-safe publish + metrics +
  // retention.
  Status FinishWrite(uint64_t epoch, const std::string& bytes);

  // Section payloads of the last core written through the shared_ptr
  // overload; its `holder` pins that core so cached source pointers stay
  // valid. Touched only inside Write, which callers already serialize.
  SnapshotSectionCache section_cache_;

  // steady-clock ns of the last successful Write, 0 if none yet; feeds the
  // age callback gauge.
  std::atomic<int64_t> last_write_ns_{0};
  ScopedCallbackGauge age_gauge_;
};

}  // namespace cod

#endif  // COD_STORAGE_SNAPSHOT_STORE_H_
