// Influential community search (ICS), after Li et al., PVLDB'15 — the
// "tangential" line of work the paper contrasts COD against (Sec. II-B):
// instead of asking where a *given node* is influential, ICS finds the
// communities whose *least influential member* is as influential as
// possible.
//
// A k-influential community is a connected k-core H; its influence value is
// f(H) = min over members of a per-node weight (here: each node's estimated
// global influence). The classic online algorithm repeatedly records the
// component of the current minimum-weight node and deletes that node,
// re-peeling to the k-core; the last r recorded components are the top-r.
//
// Provided as a library feature and for the COD-vs-ICS comparison in the
// examples: ICS communities need not contain any particular query node.

#ifndef COD_BASELINES_ICS_H_
#define COD_BASELINES_ICS_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "influence/cascade_model.h"

namespace cod {

struct IcsCommunity {
  std::vector<NodeId> members;  // sorted
  double influence_value;       // min member weight
};

// Top-r k-influential communities under the given per-node weights,
// strongest first. Fewer than r are returned when the k-core is small.
std::vector<IcsCommunity> InfluentialCommunitySearch(
    const Graph& g, std::span<const double> node_weight, uint32_t k, size_t r);

// Convenience wrapper: weights = RR-estimated global influence under
// `model` (theta samples per node).
std::vector<IcsCommunity> InfluentialCommunitySearch(
    const DiffusionModel& model, uint32_t k, size_t r, uint32_t theta,
    Rng& rng);

}  // namespace cod

#endif  // COD_BASELINES_ICS_H_
