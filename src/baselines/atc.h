// ATC baseline (Huang & Lakshmanan, PVLDB'17): attribute-driven truss
// community search.
//
// ATC finds a (k, d)-truss containing the query node — a connected k-truss
// whose nodes all lie within distance d of q — and maximizes the attribute
// score f(H, Wq) = sum_w |V_w(H)|^2 / |V(H)|. The exact problem is NP-hard;
// the original paper uses greedy bulk peeling, which is what this
// implementation does:
//
//   1. restrict to q's distance-<=d ball;
//   2. take the maximal connected k-truss containing q (k defaults to the
//      largest truss number on q's incident edges, capped by `max_k`);
//   3. repeatedly bulk-remove the lowest-degree nodes lacking the query
//      attribute, re-establish the connected k-truss around q, and keep the
//      best-scoring intermediate subgraph.

#ifndef COD_BASELINES_ATC_H_
#define COD_BASELINES_ATC_H_

#include <vector>

#include "graph/attributes.h"
#include "graph/graph.h"

namespace cod {

struct AtcOptions {
  uint32_t k = 0;        // truss parameter; 0 = automatic
  uint32_t max_k = 5;    // cap for the automatic choice
  uint32_t d = 2;        // query-distance bound
  size_t max_iterations = 40;
  // Cap on the distance ball (BFS order prefix). On hub-heavy graphs a d=2
  // ball can cover most of the graph; the greedy peeling would then spend
  // its budget on repeated truss decompositions of a huge subgraph for no
  // quality gain. 0 = unlimited.
  size_t max_ball = 4000;
};

// ATC community of (q, attr); empty when q is in no triangle within its
// distance-d ball.
std::vector<NodeId> AtcSearch(const Graph& g, const AttributeTable& attrs,
                              NodeId q, AttributeId attr,
                              const AtcOptions& options = {});

}  // namespace cod

#endif  // COD_BASELINES_ATC_H_
