// Core decomposition and the ACQ baseline (Fang et al., PVLDB'16).
//
// ACQ ("attributed community query") finds a connected k-core containing the
// query node in which every node shares the query attribute. The original
// system maximizes the number of shared attributes over attribute subsets;
// with the single query attribute used throughout the paper's evaluation
// (Sec. V-A), it reduces to: filter the graph to nodes carrying l_q, then
// return the connected component of q inside the k-core of the filtered
// graph. With k = 0 (automatic) the largest k keeping q in a k-core is used.

#ifndef COD_BASELINES_KCORE_H_
#define COD_BASELINES_KCORE_H_

#include <vector>

#include "graph/attributes.h"
#include "graph/graph.h"

namespace cod {

// Core number of every node (largest k such that the node survives in the
// k-core), by linear-time bucket peeling.
std::vector<uint32_t> CoreNumbers(const Graph& g);

// The connected component containing `q` of the subgraph induced by nodes
// with core number >= k. Empty if q's core number < k.
std::vector<NodeId> ConnectedKCore(const Graph& g, NodeId q, uint32_t k,
                                   const std::vector<uint32_t>& core);

// ACQ community of (q, attr). Empty when q does not carry `attr` or no
// qualifying community exists. k = 0 picks q's core number in the filtered
// graph (the densest constraint q can satisfy).
std::vector<NodeId> AcqSearch(const Graph& g, const AttributeTable& attrs,
                              NodeId q, AttributeId attr, uint32_t k = 0);

}  // namespace cod

#endif  // COD_BASELINES_KCORE_H_
