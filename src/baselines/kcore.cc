#include "baselines/kcore.h"

#include <algorithm>

namespace cod {

std::vector<uint32_t> CoreNumbers(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree (Batagelj–Zaveršnik peeling).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);
  std::vector<uint32_t> position(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }
  std::vector<uint32_t> core(n, 0);
  std::vector<uint32_t> bin(bucket_start.begin(), bucket_start.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    core[v] = degree[v];
    for (const AdjEntry& a : g.Neighbors(v)) {
      const NodeId u = a.to;
      if (degree[u] <= degree[v]) continue;
      // Move u to the front of its bucket, then shrink its degree.
      const uint32_t du = degree[u];
      const uint32_t pu = position[u];
      const uint32_t pw = bin[du];
      const NodeId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        position[u] = pw;
        position[w] = pu;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return core;
}

std::vector<NodeId> ConnectedKCore(const Graph& g, NodeId q, uint32_t k,
                                   const std::vector<uint32_t>& core) {
  COD_CHECK(q < g.NumNodes());
  if (core[q] < k) return {};
  std::vector<char> visited(g.NumNodes(), 0);
  std::vector<NodeId> component;
  component.push_back(q);
  visited[q] = 1;
  for (size_t head = 0; head < component.size(); ++head) {
    const NodeId v = component[head];
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (!visited[a.to] && core[a.to] >= k) {
        visited[a.to] = 1;
        component.push_back(a.to);
      }
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

std::vector<NodeId> AcqSearch(const Graph& g, const AttributeTable& attrs,
                              NodeId q, AttributeId attr, uint32_t k) {
  if (!attrs.Has(q, attr)) return {};
  std::vector<NodeId> filtered;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (attrs.Has(v, attr)) filtered.push_back(v);
  }
  const InducedSubgraph sub = BuildInducedSubgraph(g, filtered);
  NodeId local_q = kInvalidNode;
  for (size_t i = 0; i < sub.to_parent.size(); ++i) {
    if (sub.to_parent[i] == q) {
      local_q = static_cast<NodeId>(i);
      break;
    }
  }
  COD_CHECK(local_q != kInvalidNode);
  const std::vector<uint32_t> core = CoreNumbers(sub.graph);
  if (k == 0) k = core[local_q];
  if (k == 0) return {};  // q is isolated among attribute holders
  std::vector<NodeId> local = ConnectedKCore(sub.graph, local_q, k, core);
  for (NodeId& v : local) v = sub.to_parent[v];
  std::sort(local.begin(), local.end());
  return local;
}

}  // namespace cod
