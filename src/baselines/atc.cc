#include "baselines/atc.h"

#include <algorithm>

#include "baselines/ktruss.h"

namespace cod {
namespace {

// The connected k-truss around `q` within the subgraph of `base` induced by
// `nodes` (ids of `base`). Returns base-local node ids; empty if q is not in
// the k-truss.
std::vector<NodeId> ConnectedKTruss(const Graph& base,
                                    std::span<const NodeId> nodes, NodeId q,
                                    uint32_t k) {
  const InducedSubgraph sub = BuildInducedSubgraph(base, nodes);
  NodeId local_q = kInvalidNode;
  for (size_t i = 0; i < sub.to_parent.size(); ++i) {
    if (sub.to_parent[i] == q) {
      local_q = static_cast<NodeId>(i);
      break;
    }
  }
  if (local_q == kInvalidNode) return {};
  const std::vector<uint32_t> truss = TrussNumbers(sub.graph);

  // BFS from q over edges with truss number >= k.
  std::vector<char> visited(sub.graph.NumNodes(), 0);
  std::vector<NodeId> component;
  bool q_has_alive_edge = false;
  for (const AdjEntry& a : sub.graph.Neighbors(local_q)) {
    if (truss[a.edge] >= k) {
      q_has_alive_edge = true;
      break;
    }
  }
  if (!q_has_alive_edge) return {};
  visited[local_q] = 1;
  component.push_back(local_q);
  for (size_t head = 0; head < component.size(); ++head) {
    const NodeId v = component[head];
    for (const AdjEntry& a : sub.graph.Neighbors(v)) {
      if (truss[a.edge] >= k && !visited[a.to]) {
        visited[a.to] = 1;
        component.push_back(a.to);
      }
    }
  }
  for (NodeId& v : component) v = sub.to_parent[v];
  std::sort(component.begin(), component.end());
  return component;
}

double AttributeScore(const AttributeTable& attrs, AttributeId attr,
                      std::span<const NodeId> nodes) {
  if (nodes.empty()) return 0.0;
  double covered = 0.0;
  for (NodeId v : nodes) {
    if (attrs.Has(v, attr)) covered += 1.0;
  }
  return covered * covered / static_cast<double>(nodes.size());
}

}  // namespace

std::vector<NodeId> AtcSearch(const Graph& g, const AttributeTable& attrs,
                              NodeId q, AttributeId attr,
                              const AtcOptions& options) {
  COD_CHECK(q < g.NumNodes());
  COD_CHECK(options.d >= 1);

  // Distance-<=d ball around q.
  std::vector<uint32_t> dist(g.NumNodes(), static_cast<uint32_t>(-1));
  std::vector<NodeId> ball{q};
  dist[q] = 0;
  for (size_t head = 0; head < ball.size(); ++head) {
    const NodeId v = ball[head];
    if (dist[v] == options.d) continue;
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (dist[a.to] == static_cast<uint32_t>(-1)) {
        dist[a.to] = dist[v] + 1;
        ball.push_back(a.to);
      }
    }
  }
  if (options.max_ball > 0 && ball.size() > options.max_ball) {
    ball.resize(options.max_ball);  // closest nodes first (BFS order)
  }
  std::sort(ball.begin(), ball.end());

  // Choose k automatically from q's strongest incident edge in the ball.
  uint32_t k = options.k;
  if (k == 0) {
    const InducedSubgraph sub = BuildInducedSubgraph(g, ball);
    NodeId local_q = kInvalidNode;
    for (size_t i = 0; i < sub.to_parent.size(); ++i) {
      if (sub.to_parent[i] == q) local_q = static_cast<NodeId>(i);
    }
    COD_CHECK(local_q != kInvalidNode);
    const std::vector<uint32_t> truss = TrussNumbers(sub.graph);
    uint32_t kq = 2;
    for (const AdjEntry& a : sub.graph.Neighbors(local_q)) {
      kq = std::max(kq, truss[a.edge]);
    }
    if (kq < 3) return {};  // q closes no triangle within its ball
    k = std::min(kq, options.max_k);
  }

  std::vector<NodeId> current = ConnectedKTruss(g, ball, q, k);
  if (current.empty()) return {};
  std::vector<NodeId> best = current;
  double best_score = AttributeScore(attrs, attr, current);

  std::vector<char> in_current(g.NumNodes(), 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Bulk-remove the lowest-degree nodes lacking the attribute.
    for (NodeId v : current) in_current[v] = 1;
    std::vector<std::pair<uint32_t, NodeId>> lacking;  // (degree, node)
    for (NodeId v : current) {
      if (v == q || attrs.Has(v, attr)) continue;
      uint32_t deg = 0;
      for (const AdjEntry& a : g.Neighbors(v)) deg += in_current[a.to];
      lacking.emplace_back(deg, v);
    }
    for (NodeId v : current) in_current[v] = 0;
    if (lacking.empty()) break;
    std::sort(lacking.begin(), lacking.end());
    const size_t remove_count = std::max<size_t>(1, lacking.size() / 4);

    std::vector<char> removed(g.NumNodes(), 0);
    for (size_t i = 0; i < remove_count; ++i) removed[lacking[i].second] = 1;
    std::vector<NodeId> candidate;
    candidate.reserve(current.size() - remove_count);
    for (NodeId v : current) {
      if (!removed[v]) candidate.push_back(v);
    }
    std::vector<NodeId> next = ConnectedKTruss(g, candidate, q, k);
    if (next.empty()) break;
    const double score = AttributeScore(attrs, attr, next);
    if (score > best_score) {
      best_score = score;
      best = next;
    }
    if (next.size() == current.size()) break;  // no progress
    current = std::move(next);
  }
  return best;
}

}  // namespace cod
