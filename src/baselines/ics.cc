#include "baselines/ics.h"

#include <algorithm>
#include <deque>

#include "baselines/kcore.h"
#include "influence/influence_oracle.h"

namespace cod {
namespace {

// Peels `alive` down to the k-core of the alive-induced subgraph in place.
// `degree` holds alive-degrees and is maintained.
void PeelToKCore(const Graph& g, uint32_t k, std::vector<char>& alive,
                 std::vector<uint32_t>& degree) {
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (alive[v] && degree[v] < k) queue.push_back(v);
  }
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    if (!alive[v]) continue;
    alive[v] = 0;
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (!alive[a.to]) continue;
      if (--degree[a.to] < k) queue.push_back(a.to);
    }
  }
}

std::vector<NodeId> AliveComponentOf(const Graph& g, NodeId start,
                                     const std::vector<char>& alive) {
  std::vector<char> visited(g.NumNodes(), 0);
  std::vector<NodeId> component{start};
  visited[start] = 1;
  for (size_t head = 0; head < component.size(); ++head) {
    for (const AdjEntry& a : g.Neighbors(component[head])) {
      if (alive[a.to] && !visited[a.to]) {
        visited[a.to] = 1;
        component.push_back(a.to);
      }
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

}  // namespace

std::vector<IcsCommunity> InfluentialCommunitySearch(
    const Graph& g, std::span<const double> node_weight, uint32_t k,
    size_t r) {
  COD_CHECK_EQ(node_weight.size(), g.NumNodes());
  COD_CHECK(k >= 1);
  COD_CHECK(r >= 1);

  std::vector<char> alive(g.NumNodes(), 1);
  std::vector<uint32_t> degree(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) degree[v] = g.Degree(v);
  PeelToKCore(g, k, alive, degree);

  // Process nodes by increasing weight: the component of the current global
  // minimum is a maximal k-influential community with value w(min).
  std::vector<NodeId> order;
  for (NodeId v = 0; v < g.NumNodes(); ++v) order.push_back(v);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (node_weight[a] != node_weight[b]) {
      return node_weight[a] < node_weight[b];
    }
    return a < b;
  });

  std::deque<IcsCommunity> best;  // keeps the r most recent (strongest)
  for (NodeId v : order) {
    if (!alive[v]) continue;
    IcsCommunity community;
    community.influence_value = node_weight[v];
    community.members = AliveComponentOf(g, v, alive);
    best.push_back(std::move(community));
    if (best.size() > r) best.pop_front();
    // Delete the minimum node and restore the k-core invariant.
    alive[v] = 0;
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (alive[a.to]) --degree[a.to];
    }
    PeelToKCore(g, k, alive, degree);
  }

  // Strongest (recorded last) first.
  std::vector<IcsCommunity> result(best.rbegin(), best.rend());
  return result;
}

std::vector<IcsCommunity> InfluentialCommunitySearch(
    const DiffusionModel& model, uint32_t k, size_t r, uint32_t theta,
    Rng& rng) {
  const Graph& g = model.graph();
  std::vector<NodeId> everyone;
  for (NodeId v = 0; v < g.NumNodes(); ++v) everyone.push_back(v);
  InfluenceOracle oracle(model);
  const std::vector<uint32_t> counts =
      oracle.CountsWithin(everyone, theta, rng);
  std::vector<double> weights(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    weights[v] = static_cast<double>(counts[v]) / theta;
  }
  return InfluentialCommunitySearch(g, weights, k, r);
}

}  // namespace cod
