// Truss decomposition and the CAC baseline (Zhu et al., CIKM'20).
//
// The k-truss of a graph is the maximal subgraph whose every edge closes at
// least k-2 triangles inside it. CAC ("cohesive attributed community") finds
// a triangle-connected k-truss containing the query node in which all nodes
// share the query attribute; as in the paper's evaluation we use the single
// query attribute and the largest k the query can satisfy, which yields the
// small, very dense communities the paper reports for CAC.

#ifndef COD_BASELINES_KTRUSS_H_
#define COD_BASELINES_KTRUSS_H_

#include <vector>

#include "graph/attributes.h"
#include "graph/graph.h"

namespace cod {

// Truss number of every edge (largest k such that the edge survives in the
// k-truss); 2 for edges in no triangle. Peeling with bucketed supports.
std::vector<uint32_t> TrussNumbers(const Graph& g);

// Nodes of the largest triangle-connected component of {edges with truss
// number >= k} that contains an edge incident to q. Requires k >= 3 (below
// that triangle connectivity is void); empty if q has no qualifying edge.
std::vector<NodeId> TriangleConnectedTruss(const Graph& g, NodeId q,
                                           uint32_t k,
                                           const std::vector<uint32_t>& truss);

// CAC community of (q, attr): filter to attribute holders, take k as the
// maximum truss number over q's incident filtered edges, return the largest
// triangle-connected k-truss community of q. Empty if none exists.
std::vector<NodeId> CacSearch(const Graph& g, const AttributeTable& attrs,
                              NodeId q, AttributeId attr);

}  // namespace cod

#endif  // COD_BASELINES_KTRUSS_H_
