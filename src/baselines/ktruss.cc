#include "baselines/ktruss.h"

#include <algorithm>

namespace cod {
namespace {

// Calls fn(edge_uw, edge_vw) for every triangle {u, v, w} closing the edge
// (u, v); adjacency lists are sorted by node id, so this is a merge walk.
template <typename Fn>
void ForEachTriangleOf(const Graph& g, NodeId u, NodeId v, Fn&& fn) {
  const auto nu = g.Neighbors(u);
  const auto nv = g.Neighbors(v);
  size_t i = 0;
  size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i].to == nv[j].to) {
      if (nu[i].to != u && nu[i].to != v) fn(nu[i].edge, nv[j].edge);
      ++i;
      ++j;
    } else if (nu[i].to < nv[j].to) {
      ++i;
    } else {
      ++j;
    }
  }
}

std::vector<uint32_t> ComputeSupports(const Graph& g) {
  std::vector<uint32_t> support(g.NumEdges(), 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    uint32_t s = 0;
    ForEachTriangleOf(g, u, v, [&](EdgeId, EdgeId) { ++s; });
    support[e] = s;
  }
  return support;
}

}  // namespace

std::vector<uint32_t> TrussNumbers(const Graph& g) {
  const size_t m = g.NumEdges();
  std::vector<uint32_t> support = ComputeSupports(g);
  uint32_t max_support = 0;
  for (uint32_t s : support) max_support = std::max(max_support, s);

  // Bucket peeling over edge supports (mirrors the core-number peeling).
  std::vector<uint32_t> bucket_start(max_support + 2, 0);
  for (EdgeId e = 0; e < m; ++e) ++bucket_start[support[e] + 1];
  for (size_t s = 1; s < bucket_start.size(); ++s) {
    bucket_start[s] += bucket_start[s - 1];
  }
  std::vector<EdgeId> order(m);
  std::vector<uint32_t> position(m);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      position[e] = cursor[support[e]]++;
      order[position[e]] = e;
    }
  }
  std::vector<uint32_t> bin(bucket_start.begin(), bucket_start.end() - 1);
  std::vector<char> removed(m, 0);
  std::vector<uint32_t> truss(m, 2);

  auto decrease_support = [&](EdgeId f, uint32_t floor_support) {
    if (support[f] <= floor_support) return;
    const uint32_t sf = support[f];
    const uint32_t pf = position[f];
    const uint32_t pw = bin[sf];
    const EdgeId w = order[pw];
    if (f != w) {
      std::swap(order[pf], order[pw]);
      position[f] = pw;
      position[w] = pf;
    }
    ++bin[sf];
    --support[f];
  };

  for (size_t i = 0; i < m; ++i) {
    const EdgeId e = order[i];
    truss[e] = support[e] + 2;
    removed[e] = 1;
    const auto [u, v] = g.Endpoints(e);
    ForEachTriangleOf(g, u, v, [&](EdgeId euw, EdgeId evw) {
      if (removed[euw] || removed[evw]) return;
      decrease_support(euw, support[e]);
      decrease_support(evw, support[e]);
    });
  }
  return truss;
}

std::vector<NodeId> TriangleConnectedTruss(const Graph& g, NodeId q,
                                           uint32_t k,
                                           const std::vector<uint32_t>& truss) {
  COD_CHECK(k >= 3);
  std::vector<char> edge_visited(g.NumEdges(), 0);
  auto alive = [&](EdgeId e) { return truss[e] >= k; };

  std::vector<NodeId> best_nodes;
  for (const AdjEntry& seed : g.Neighbors(q)) {
    if (!alive(seed.edge) || edge_visited[seed.edge]) continue;
    // BFS over edges via shared (alive) triangles.
    std::vector<EdgeId> frontier{seed.edge};
    edge_visited[seed.edge] = 1;
    std::vector<NodeId> nodes;
    for (size_t head = 0; head < frontier.size(); ++head) {
      const EdgeId e = frontier[head];
      const auto [u, v] = g.Endpoints(e);
      nodes.push_back(u);
      nodes.push_back(v);
      ForEachTriangleOf(g, u, v, [&](EdgeId euw, EdgeId evw) {
        if (!alive(euw) || !alive(evw)) return;
        if (!edge_visited[euw]) {
          edge_visited[euw] = 1;
          frontier.push_back(euw);
        }
        if (!edge_visited[evw]) {
          edge_visited[evw] = 1;
          frontier.push_back(evw);
        }
      });
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    if (nodes.size() > best_nodes.size()) best_nodes = std::move(nodes);
  }
  return best_nodes;
}

std::vector<NodeId> CacSearch(const Graph& g, const AttributeTable& attrs,
                              NodeId q, AttributeId attr) {
  if (!attrs.Has(q, attr)) return {};
  std::vector<NodeId> filtered;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (attrs.Has(v, attr)) filtered.push_back(v);
  }
  const InducedSubgraph sub = BuildInducedSubgraph(g, filtered);
  NodeId local_q = kInvalidNode;
  for (size_t i = 0; i < sub.to_parent.size(); ++i) {
    if (sub.to_parent[i] == q) {
      local_q = static_cast<NodeId>(i);
      break;
    }
  }
  COD_CHECK(local_q != kInvalidNode);

  const std::vector<uint32_t> truss = TrussNumbers(sub.graph);
  uint32_t kq = 2;
  for (const AdjEntry& a : sub.graph.Neighbors(local_q)) {
    kq = std::max(kq, truss[a.edge]);
  }
  if (kq < 3) return {};  // q closes no triangle among attribute holders
  std::vector<NodeId> local =
      TriangleConnectedTruss(sub.graph, local_q, kq, truss);
  for (NodeId& v : local) v = sub.to_parent[v];
  std::sort(local.begin(), local.end());
  return local;
}

}  // namespace cod
