#include "eval/query_gen.h"

#include <algorithm>

namespace cod {

std::vector<Query> GenerateQueries(const AttributeTable& attrs, size_t count,
                                   Rng& rng) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < attrs.NumNodes(); ++v) {
    if (!attrs.AttributesOf(v).empty()) candidates.push_back(v);
  }
  COD_CHECK(!candidates.empty());
  // Fisher-Yates prefix shuffle for sampling without replacement.
  const size_t take = std::min(count, candidates.size());
  for (size_t i = 0; i < take; ++i) {
    const size_t j = i + rng.UniformInt(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Wrap around (with replacement) if more queries than candidates.
    const NodeId node = candidates[i % take];
    const auto node_attrs = attrs.AttributesOf(node);
    queries.push_back(
        Query{node, node_attrs[rng.UniformInt(node_attrs.size())]});
  }
  return queries;
}

}  // namespace cod
