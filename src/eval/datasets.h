// Named synthetic dataset registry.
//
// Rebuilds laptop-scale stand-ins for the paper's seven evaluation networks
// (Table I) from the generators in graph/generators.h; see DESIGN.md
// sections 3 and 5 for the exact scales and the substitution argument.
// Every dataset is connected, deterministic for a given name, and carries
// attributes assigned by the scheme its real counterpart uses.

#ifndef COD_EVAL_DATASETS_H_
#define COD_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/attributes.h"

namespace cod {

// All registered dataset names, smallest first:
//   cora-sim, citeseer-sim, pubmed-sim, retweet-sim, amazon-sim, dblp-sim,
//   livejournal-sim
std::vector<std::string> DatasetNames();

// The first four (the paper's "real-attribute" group, used in Fig. 4).
std::vector<std::string> SmallDatasetNames();

// Builds the named dataset. `seed_override` != 0 replaces the default
// per-name seed. NotFound for unknown names.
Result<AttributedGraph> MakeDataset(const std::string& name,
                                    uint64_t seed_override = 0);

}  // namespace cod

#endif  // COD_EVAL_DATASETS_H_
