// Effectiveness measures of the paper's evaluation (Sec. V-A):
// community size, topology density rho, attribute density phi, query-node
// influence I(q), conductance (case study), and the top-k precision check
// used by the Compressed-vs-Independent experiment (Fig. 8).

#ifndef COD_EVAL_METRICS_H_
#define COD_EVAL_METRICS_H_

#include <span>

#include "common/random.h"
#include "graph/attributes.h"
#include "graph/graph.h"
#include "influence/cascade_model.h"

namespace cod {

// Edges inside `nodes` divided by the number of node pairs; 0 for |S| < 2.
double TopologyDensity(const Graph& g, std::span<const NodeId> nodes);

// Fraction of `nodes` carrying `attr`; 0 for empty input.
double AttributeDensity(const AttributeTable& attrs, AttributeId attr,
                        std::span<const NodeId> nodes);

// Re-checks whether q is truly top-k influential inside the community by
// sampling `theta_verify` restricted RR sets per member (the paper verifies
// with 1000 RR sets per node). Returns q's verified rank (clamped to the
// member count).
uint32_t VerifiedRank(const DiffusionModel& model,
                      std::span<const NodeId> members, NodeId q,
                      uint32_t theta_verify, Rng& rng);

}  // namespace cod

#endif  // COD_EVAL_METRICS_H_
