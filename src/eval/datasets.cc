#include "eval/datasets.h"

#include "graph/connectivity.h"
#include "graph/generators.h"

namespace cod {
namespace {

struct SmallSpec {
  size_t nodes;
  size_t edges;
  int levels;
  int fanout;
  size_t vocabulary;
  double fidelity;
};

AttributedGraph MakeSmall(const SmallSpec& spec, uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = spec.nodes;
  params.num_edges = spec.edges;
  params.levels = spec.levels;
  params.fanout = spec.fanout;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  AttributedGraph out;
  out.attributes = AssignCorrelatedAttributes(gen.block, spec.vocabulary,
                                              spec.fidelity,
                                              /*extra_prob=*/0.1, rng);
  out.graph = std::move(gen.graph);
  return out;
}

struct BlockSpec {
  size_t nodes;
  size_t edges;
  int levels;
  int fanout;
  size_t attributes;
};

AttributedGraph MakeBlockAttributed(const BlockSpec& spec, uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = spec.nodes;
  params.num_edges = spec.edges;
  params.levels = spec.levels;
  params.fanout = spec.fanout;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  AttributedGraph out;
  out.attributes = AssignBlockAttributes(gen.block, spec.attributes, rng);
  out.graph = std::move(gen.graph);
  return out;
}

// PubMed and Retweet stand-ins use the core-periphery generator: their real
// counterparts are hub-dominated (citation hubs / celebrity accounts), which
// is what skews globally clustered hierarchies in the paper's Fig. 4.
AttributedGraph MakePubmedSim(uint64_t seed) {
  Rng rng(seed);
  CorePeripheryParams params;
  params.num_nodes = 19717;
  params.core_size = 300;
  params.core_edges = 2000;
  params.second_edge_prob = 0.75;
  params.num_blocks = 128;
  params.intra_block_edges = 8500;
  GeneratedGraph gen = CorePeripheryGraph(params, rng);
  AttributedGraph out;
  out.attributes = AssignCorrelatedAttributes(gen.block, /*vocabulary=*/3,
                                              /*fidelity=*/0.75,
                                              /*extra_prob=*/0.05, rng);
  out.graph = std::move(gen.graph);
  return out;
}

AttributedGraph MakeRetweetSim(uint64_t seed) {
  Rng rng(seed);
  CorePeripheryParams params;
  params.num_nodes = 18470;
  params.core_size = 60;
  params.core_edges = 500;
  params.second_edge_prob = 1.0;
  params.num_blocks = 60;
  params.intra_block_edges = 11000;
  GeneratedGraph gen = CorePeripheryGraph(params, rng);
  AttributedGraph out;
  out.attributes = AssignCorrelatedAttributes(gen.block, /*vocabulary=*/2,
                                              /*fidelity=*/0.8,
                                              /*extra_prob=*/0.05, rng);
  out.graph = std::move(gen.graph);
  return out;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"cora-sim",   "citeseer-sim", "pubmed-sim",     "retweet-sim",
          "amazon-sim", "dblp-sim",     "livejournal-sim"};
}

std::vector<std::string> SmallDatasetNames() {
  return {"cora-sim", "citeseer-sim", "pubmed-sim", "retweet-sim"};
}

Result<AttributedGraph> MakeDataset(const std::string& name,
                                    uint64_t seed_override) {
  // Fixed per-name seeds keep every bench and test reproducible.
  auto seed = [&](uint64_t default_seed) {
    return seed_override != 0 ? seed_override : default_seed;
  };
  if (name == "cora-sim") {
    return MakeSmall({2485, 5069, 3, 4, 7, 0.75}, seed(0xC04Aull));
  }
  if (name == "citeseer-sim") {
    return MakeSmall({2110, 3668, 3, 4, 6, 0.75}, seed(0xC17Eull));
  }
  if (name == "pubmed-sim") {
    return MakePubmedSim(seed(0x9B3Dull));
  }
  if (name == "retweet-sim") {
    return MakeRetweetSim(seed(0x4E73ull));
  }
  if (name == "amazon-sim") {
    return MakeBlockAttributed({33486, 92000, 5, 4, 33}, seed(0xA3A2ull));
  }
  if (name == "dblp-sim") {
    return MakeBlockAttributed({31708, 105000, 5, 4, 31}, seed(0xDB19ull));
  }
  if (name == "livejournal-sim") {
    return MakeBlockAttributed({100000, 870000, 6, 4, 400}, seed(0x173Full));
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace cod
