// Query workloads as in the paper (Sec. V-A): random query nodes, each paired
// with one of its own attributes chosen at random.

#ifndef COD_EVAL_QUERY_GEN_H_
#define COD_EVAL_QUERY_GEN_H_

#include <vector>

#include "common/random.h"
#include "graph/attributes.h"

namespace cod {

struct Query {
  NodeId node;
  AttributeId attribute;
};

// Draws `count` queries: nodes uniform among nodes with at least one
// attribute (without replacement while possible), attribute uniform from the
// node's own set.
std::vector<Query> GenerateQueries(const AttributeTable& attrs, size_t count,
                                   Rng& rng);

}  // namespace cod

#endif  // COD_EVAL_QUERY_GEN_H_
