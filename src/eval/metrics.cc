#include "eval/metrics.h"

#include <vector>

#include "influence/influence_oracle.h"

namespace cod {

double TopologyDensity(const Graph& g, std::span<const NodeId> nodes) {
  if (nodes.size() < 2) return 0.0;
  std::vector<char> in_set(g.NumNodes(), 0);
  for (NodeId v : nodes) in_set[v] = 1;
  size_t internal_twice = 0;
  for (NodeId v : nodes) {
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (in_set[a.to]) ++internal_twice;
    }
  }
  const double pairs =
      static_cast<double>(nodes.size()) * (nodes.size() - 1) / 2.0;
  return static_cast<double>(internal_twice / 2) / pairs;
}

double AttributeDensity(const AttributeTable& attrs, AttributeId attr,
                        std::span<const NodeId> nodes) {
  if (nodes.empty()) return 0.0;
  size_t covered = 0;
  for (NodeId v : nodes) {
    if (attrs.Has(v, attr)) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(nodes.size());
}

uint32_t VerifiedRank(const DiffusionModel& model,
                      std::span<const NodeId> members, NodeId q,
                      uint32_t theta_verify, Rng& rng) {
  InfluenceOracle oracle(model);
  const std::vector<uint32_t> counts =
      oracle.CountsWithin(members, theta_verify, rng);
  return InfluenceOracle::RankOf(members, counts, q);
}

}  // namespace cod
