// Aligned plain-text table printer.
//
// The bench binaries regenerate the paper's tables and figure series as rows
// on stdout; this helper keeps the columns aligned and the formatting in one
// place.

#ifndef COD_COMMON_TABLE_H_
#define COD_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace cod {

// Collects rows of cells and renders them with per-column alignment.
// Example:
//   TablePrinter t({"dataset", "|V|", "|E|"});
//   t.AddRow({"cora-sim", "2485", "5069"});
//   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Renders the header, a separator, and all rows to `out`.
  void Print(std::FILE* out) const;

  // Convenience cell formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(size_t v);
  static std::string Fmt(int v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cod

#endif  // COD_COMMON_TABLE_H_
