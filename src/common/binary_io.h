// Binary (de)serialization helpers for index, hierarchy, and snapshot
// persistence. Format discipline: fixed-width little-endian integers (we
// only target little-endian platforms, checked at build time), a 4-byte
// magic + 4-byte version per file, length-prefixed arrays of PODs, and a
// CRC32C over every durable payload (common/crc32c.h).
//
// Hostile-input stance: readers treat every byte from disk as attacker-
// controlled. Length prefixes are validated against the bytes actually
// remaining BEFORE any allocation (a corrupt uint64_t length must produce a
// clean Status, never a bad_alloc/OOM), reads past EOF fail instead of
// yielding zeros, and the first failure latches into status() with the
// offset where decoding stopped so loaders can report precise diagnostics.

#ifndef COD_COMMON_BINARY_IO_H_
#define COD_COMMON_BINARY_IO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/status.h"

static_assert(std::endian::native == std::endian::little,
              "codlib's binary formats assume a little-endian platform");

namespace cod {

// Streams PODs and length-prefixed arrays to a file. The path given at
// construction is remembered for error reporting — Finish() takes no
// arguments and returns the first write error, if any.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string path)
      : path_(std::move(path)), out_(path_, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(values.size());
    out_.write(reinterpret_cast<const char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(T)));
  }

  void WriteBytes(std::string_view bytes) {
    out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Status Finish() {
    out_.flush();
    if (!out_) return Status::IoError("write to " + path_ + " failed");
    return Status::Ok();
  }

 private:
  std::string path_;
  std::ofstream out_;
};

// The in-memory twin of BinaryWriter: appends to a std::string. Snapshot
// sections are assembled here so each section's CRC32C can be computed over
// the exact bytes that hit the disk.
class BinaryBufferWriter {
 public:
  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(values.size());
    buf_.append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(T));
  }

  // Length-prefixed string (for interned names and the like).
  void WriteString(std::string_view s) {
    WritePod<uint64_t>(s.size());
    buf_.append(s.data(), s.size());
  }

  void WriteBytes(std::string_view bytes) {
    buf_.append(bytes.data(), bytes.size());
  }

  size_t size() const { return buf_.size(); }
  const std::string& bytes() const { return buf_; }
  std::string&& TakeBytes() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Decodes PODs and length-prefixed arrays from an in-memory byte range the
// caller keeps alive. Every read validates against the remaining bytes
// before touching memory; the first failure latches (all later reads fail
// fast) and status() describes what broke and where.
class BinarySpanReader {
 public:
  // `origin` names the byte source in error messages (a path, a snapshot
  // section, ...).
  explicit BinarySpanReader(std::string_view bytes, std::string origin = "")
      : bytes_(bytes), origin_(std::move(origin)) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return bytes_.size() - off_; }
  bool exhausted() const { return off_ == bytes_.size(); }
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!status_.ok()) return false;
    if (remaining() < sizeof(T)) {
      return Fail("truncated: need " + std::to_string(sizeof(T)) + " bytes");
    }
    std::memcpy(value, bytes_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  // Rejects lengths that cannot possibly fit in the remaining bytes before
  // allocating anything: a corrupted length field must not OOM or throw.
  template <typename T>
  bool ReadVector(std::vector<T>* values, uint64_t max_elements = UINT64_MAX) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!ReadPod(&size)) return false;
    if (size > max_elements) {
      return Fail("array length " + std::to_string(size) + " exceeds cap " +
                  std::to_string(max_elements));
    }
    if (size > remaining() / sizeof(T)) {
      return Fail("array length " + std::to_string(size) +
                  " exceeds remaining bytes");
    }
    values->resize(size);
    std::memcpy(values->data(), bytes_.data() + off_, size * sizeof(T));
    off_ += size * sizeof(T);
    return true;
  }

  bool ReadString(std::string* s, uint64_t max_bytes = UINT64_MAX) {
    uint64_t size = 0;
    if (!ReadPod(&size)) return false;
    if (size > max_bytes || size > remaining()) {
      return Fail("string length " + std::to_string(size) + " out of range");
    }
    s->assign(bytes_.data() + off_, size);
    off_ += size;
    return true;
  }

  // Records a decoding failure discovered by the CALLER (a semantic check
  // over successfully read bytes) so it surfaces through status() like any
  // read failure. Always returns false.
  bool Fail(const std::string& why) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          (origin_.empty() ? std::string("<buffer>") : origin_) +
          " at offset " + std::to_string(off_) + ": " + why);
    }
    return false;
  }

 private:
  std::string_view bytes_;
  std::string origin_;
  size_t off_ = 0;
  Status status_;
};

// File-backed reader with the same hostile-input discipline. The byte
// offset is tracked explicitly (never derived from tellg(), which reports
// -1 once the stream fails), so remaining-bytes validation stays sound even
// after an earlier unchecked failure.
class BinaryReader {
 public:
  explicit BinaryReader(std::string path)
      : path_(std::move(path)), in_(path_, std::ios::binary) {
    if (!in_) {
      status_ = Status::IoError("cannot open " + path_);
      return;
    }
    in_.seekg(0, std::ios::end);
    file_size_ = static_cast<uint64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  uint64_t file_size() const { return file_size_; }
  uint64_t remaining() const { return file_size_ - off_; }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!status_.ok()) return false;
    if (remaining() < sizeof(T)) {
      return Fail("truncated: need " + std::to_string(sizeof(T)) + " bytes");
    }
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    if (!in_) return Fail("read failed");
    off_ += sizeof(T);
    return true;
  }

  // As BinarySpanReader::ReadVector: the length prefix is validated against
  // the remaining FILE bytes before the allocation.
  template <typename T>
  bool ReadVector(std::vector<T>* values, uint64_t max_elements = UINT64_MAX) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!ReadPod(&size)) return false;
    if (size > max_elements) {
      return Fail("array length " + std::to_string(size) + " exceeds cap " +
                  std::to_string(max_elements));
    }
    if (size > remaining() / sizeof(T)) {
      return Fail("array length " + std::to_string(size) +
                  " exceeds remaining bytes");
    }
    values->resize(size);
    in_.read(reinterpret_cast<char*>(values->data()),
             static_cast<std::streamsize>(size * sizeof(T)));
    if (!in_) return Fail("read failed");
    off_ += size * sizeof(T);
    return true;
  }

  // Reads the whole remainder of the file (snapshot loaders checksum entire
  // payloads before parsing them).
  bool ReadRemaining(std::string* out) {
    if (!status_.ok()) return false;
    out->resize(remaining());
    in_.read(out->data(), static_cast<std::streamsize>(out->size()));
    if (!in_ && !out->empty()) return Fail("read failed");
    off_ = file_size_;
    return true;
  }

  bool Fail(const std::string& why) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(path_ + " at offset " +
                                        std::to_string(off_) + ": " + why);
    }
    return false;
  }

 private:
  std::string path_;
  std::ifstream in_;
  uint64_t file_size_ = 0;
  uint64_t off_ = 0;
  Status status_;
};

// ---- Checksummed single-payload files. ----
//
// Layout: u32 magic | u32 version | u64 payload_size | payload | u32 CRC32C
// of the payload. The standalone dendrogram / HIMOR files use this; the
// epoch snapshot container (storage/epoch_snapshot.h) has its own
// section-wise layout instead.

inline Status WriteChecksummedFile(const std::string& path, uint32_t magic,
                                   uint32_t version,
                                   std::string_view payload) {
  BinaryWriter writer(path);
  if (!writer.ok()) return Status::IoError("cannot open " + path);
  writer.WritePod(magic);
  writer.WritePod(version);
  writer.WritePod<uint64_t>(payload.size());
  writer.WriteBytes(payload);
  writer.WritePod<uint32_t>(Crc32c(payload));
  return writer.Finish();
}

// Returns the verified payload bytes; `what` names the format in errors
// ("dendrogram", "HIMOR index", ...). Magic mismatch, version skew,
// truncation, over-long payload length, and CRC mismatch all produce a
// clean Status.
inline Result<std::string> ReadChecksummedFile(const std::string& path,
                                               uint32_t magic,
                                               uint32_t version,
                                               const std::string& what) {
  BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  uint32_t file_magic = 0;
  uint32_t file_version = 0;
  uint64_t payload_size = 0;
  if (!reader.ReadPod(&file_magic) || file_magic != magic) {
    return Status::InvalidArgument(path + ": not a codlib " + what + " file");
  }
  if (!reader.ReadPod(&file_version) || file_version != version) {
    return Status::InvalidArgument(path + ": unsupported " + what +
                                   " version");
  }
  if (!reader.ReadPod(&payload_size) ||
      payload_size + sizeof(uint32_t) != reader.remaining()) {
    return Status::InvalidArgument(path + ": " + what +
                                   " payload length does not match file size");
  }
  std::string tail;
  if (!reader.ReadRemaining(&tail) ||
      tail.size() != payload_size + sizeof(uint32_t)) {
    return Status::InvalidArgument(path + ": truncated " + what + " file");
  }
  std::string payload(tail, 0, payload_size);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, tail.data() + payload_size, sizeof(stored_crc));
  if (Crc32c(payload) != stored_crc) {
    return Status::InvalidArgument(path + ": " + what + " checksum mismatch");
  }
  return payload;
}

}  // namespace cod

#endif  // COD_COMMON_BINARY_IO_H_
