// Minimal binary (de)serialization helpers for index and hierarchy
// persistence. Format discipline: fixed-width little-endian integers (we
// only target little-endian platforms, checked at build time), a 4-byte
// magic + 4-byte version per file, and length-prefixed arrays of PODs.

#ifndef COD_COMMON_BINARY_IO_H_
#define COD_COMMON_BINARY_IO_H_

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

static_assert(std::endian::native == std::endian::little,
              "codlib's binary formats assume a little-endian platform");

namespace cod {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(values.size());
    out_.write(reinterpret_cast<const char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(T)));
  }

  Status Finish(const std::string& path) {
    out_.flush();
    if (!out_) return Status::IoError("write to " + path + " failed");
    return Status::Ok();
  }

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      file_size_ = static_cast<uint64_t>(in_.tellg());
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_); }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    return static_cast<bool>(in_);
  }

  // Rejects lengths that cannot possibly fit in the rest of the file before
  // allocating anything: a corrupted length field must not OOM or throw.
  template <typename T>
  bool ReadVector(std::vector<T>* values,
                  uint64_t max_elements = UINT64_MAX) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!ReadPod(&size) || size > max_elements) return false;
    const uint64_t remaining =
        file_size_ - static_cast<uint64_t>(in_.tellg());
    if (size > remaining / sizeof(T)) return false;
    values->resize(size);
    in_.read(reinterpret_cast<char*>(values->data()),
             static_cast<std::streamsize>(size * sizeof(T)));
    return static_cast<bool>(in_);
  }

 private:
  std::ifstream in_;
  uint64_t file_size_ = 0;
};

}  // namespace cod

#endif  // COD_COMMON_BINARY_IO_H_
