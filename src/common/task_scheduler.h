// Task scheduler: per-worker priority deques, work stealing, TaskGroups,
// timers, and admission control. Replaces the flat FIFO ThreadPool for every
// concurrent subsystem (batch query workers, async rebuilds, retry timers,
// parallel RR sampling, parallel HIMOR construction).
//
// Design (DESIGN.md Sec. 12 has the full writeup):
//
//  * Every worker owns one deque per priority class. Submissions from a
//    worker thread go to that worker's own deque (affinity — a batch chunk
//    that fans out sampling chunks keeps them local); submissions from
//    outside are spread round-robin. An idle worker drains priorities in
//    order, scanning its own deque first and then stealing from siblings, so
//    a queued interactive task always starts before a queued rebuild task no
//    matter whose deque it sits in.
//
//  * TaskGroup replaces the global WaitIdle() barrier. Submit into a group,
//    then Wait() for exactly those tasks. Waiting from a worker thread does
//    not block the slot: the waiter runs queued tasks inline (preferring
//    tasks of the awaited group) until the group drains. That makes
//    nested fan-out (batch worker -> sampling chunks on the same scheduler)
//    deadlock-free by construction, so the old IsWorkerThread() serial
//    fallbacks are gone.
//
//  * The wait protocol is lost-wakeup-free: Submit bumps submit_epoch_ under
//    sleep_mu_; a worker that found all queues empty records the epoch,
//    rescans every queue, and only then waits on the predicate
//    `stopping_ || submit_epoch_ != seen`. Any push either lands before the
//    rescan (the rescan finds it) or bumps the epoch after `seen` was read
//    (the predicate is already true) — the old pool's notify_one race cannot
//    recur.
//
//  * ScheduleAt() runs a task at a deadline (one lazily-started timer
//    thread); DynamicCodService's retry backoff rides on it instead of a
//    dedicated per-service thread.
//
//  * ShouldShed() is the admission valve: when a priority class's queued
//    depth exceeds its configured bound (or the "scheduler/admission"
//    failpoint is armed), callers shed work into the degradation ladder
//    instead of queueing unboundedly. The scheduler never rejects Submit
//    itself — shedding is the caller's (cheaper) plan B, not an error.
//
// Determinism: the scheduler moves work between threads, but every consumer
// derives RNG streams from (seed, logical index) and merges in logical
// order, so results are bit-identical for any worker count and any stealing
// interleaving. Tasks must not throw (the library is exception-free).
//
// Metrics (when MetricsRegistry::enabled()):
//   cod_sched_submitted_total{priority=...}   tasks accepted
//   cod_sched_stolen_total                    tasks run by a non-home worker
//   cod_sched_inline_runs_total               tasks run inside a Wait()
//   cod_sched_shed_total                      ShouldShed() true verdicts
//   cod_sched_queue_depth{priority=...}       queued (not yet started) tasks
//   cod_sched_queue_delay_seconds             submit-to-start latency

#ifndef COD_COMMON_TASK_SCHEDULER_H_
#define COD_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace cod {

// Priority classes, highest first. Dequeue order is strict: a worker (or an
// inline-helping waiter) never starts a lower class while any queue holds a
// higher one.
enum class TaskPriority : uint8_t {
  kInteractive = 0,  // query-path work: batch chunks, sampling chunks
  kRebuild = 1,      // index/epoch construction
  kMaintenance = 2,  // retry timers, background upkeep
};
inline constexpr size_t kNumTaskPriorities = 3;

const char* TaskPriorityName(TaskPriority priority);

class TaskScheduler;

namespace scheduler_internal {
// Shared completion state of one TaskGroup. pending counts submitted (or
// timer-scheduled) tasks not yet finished; guarded by mu. Held by
// shared_ptr from the group handle and every in-flight task, so a task
// finishing after the handle died still has a live target.
struct GroupState {
  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
};
}  // namespace scheduler_internal

// Completion handle for a set of tasks. Not thread-safe for concurrent
// Submit-into/Wait from multiple external threads — the canonical shape is
// one owner that submits, then waits. The destructor waits too, so a group
// cannot outlive the stack frame whose locals its tasks capture.
class TaskGroup {
 public:
  explicit TaskGroup(TaskScheduler& scheduler);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Blocks until every task submitted into this group has finished. From a
  // scheduler worker thread this runs queued tasks inline (awaited group
  // first, then anything runnable in priority order) instead of parking the
  // slot — see the deadlock-freedom argument in DESIGN.md Sec. 12.
  void Wait();

  bool Done() const;

 private:
  friend class TaskScheduler;
  TaskScheduler* scheduler_;
  std::shared_ptr<scheduler_internal::GroupState> state_;
};

class TaskScheduler {
 public:
  struct Options {
    // 0 uses hardware concurrency (at least 1).
    size_t num_threads = 0;
    // Per-priority admission bound: ShouldShed() reports true while the
    // class's queued depth exceeds this. 0 = unbounded (never shed).
    size_t max_queue_depth[kNumTaskPriorities] = {0, 0, 0};
  };

  explicit TaskScheduler(size_t num_threads)
      : TaskScheduler(MakeOptions(num_threads)) {}
  explicit TaskScheduler(const Options& options);
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  // Cancels outstanding timers (their groups see the tasks as finished),
  // then drains every queued task before joining the workers — matching the
  // old pool's run-everything-submitted contract.
  ~TaskScheduler();

  size_t num_threads() const { return workers_.size(); }

  // True when the calling thread is one of THIS scheduler's workers. Purely
  // informational now — blocking on your own group from a worker is safe
  // (inline help), so there is no fallback path keyed on this.
  bool IsWorkerThread() const;

  void Submit(TaskPriority priority, std::function<void()> fn);
  void Submit(TaskPriority priority, TaskGroup& group,
              std::function<void()> fn);

  using Clock = std::chrono::steady_clock;

  // Enqueues `fn` at `priority` once `when` arrives. Returns a timer id for
  // CancelTimer. With a group, the group's Wait() covers the timer: it
  // resolves when the task finishes or the timer is cancelled.
  uint64_t ScheduleAt(Clock::time_point when, TaskPriority priority,
                      std::function<void()> fn);
  uint64_t ScheduleAt(Clock::time_point when, TaskPriority priority,
                      TaskGroup& group, std::function<void()> fn);

  // True iff the timer was still pending (its task will never run).
  bool CancelTimer(uint64_t timer_id);

  // Admission control: true when `incoming` more tasks of `priority` should
  // be shed (served degraded by the caller) instead of queued — the class's
  // queued depth is already over Options::max_queue_depth, or the
  // "scheduler/admission" failpoint fires. Never blocks; counted in
  // cod_sched_shed_total.
  bool ShouldShed(TaskPriority priority, size_t incoming = 1);

  // Queued (not yet started) tasks of one class, across all workers.
  size_t QueueDepth(TaskPriority priority) const {
    return depth_[static_cast<size_t>(priority)].load(
        std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;
  using GroupStatePtr = std::shared_ptr<scheduler_internal::GroupState>;

  struct Task {
    std::function<void()> fn;
    GroupStatePtr group;
    Clock::time_point enqueued{};  // zero when metrics are disabled
  };

  // Worker-owned state. The mutex guards only this worker's deques; the
  // sleep protocol lives on the scheduler-wide sleep_mu_.
  struct alignas(64) Worker {
    std::mutex mu;
    std::deque<Task> queues[kNumTaskPriorities];
    std::thread thread;
  };

  struct TimerEntry {
    Clock::time_point when;
    TaskPriority priority;
    Task task;
  };

  static Options MakeOptions(size_t num_threads) {
    Options o;
    o.num_threads = num_threads;
    return o;
  }

  void SubmitTask(TaskPriority priority, GroupStatePtr group,
                  std::function<void()> fn);
  void Enqueue(TaskPriority priority, Task task);
  // Pops the next runnable task: per priority, `start`'s own deque first,
  // then siblings. With `prefer`, a full pass over tasks of that group runs
  // first. Updates depth/stolen accounting.
  bool TryDequeue(size_t start, const scheduler_internal::GroupState* prefer,
                  Task* out);
  // One inline-help step for a waiting worker; false if nothing runnable.
  bool RunOneQueuedTask(const scheduler_internal::GroupState* prefer);
  void RunTask(Task& task);
  static void FinishGroupTask(const GroupStatePtr& group);
  void WorkerLoop(size_t index);
  void TimerLoop();

  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> rr_cursor_{0};
  std::atomic<size_t> depth_[kNumTaskPriorities];

  // Sleep protocol (lost-wakeup-free; see header comment).
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  uint64_t submit_epoch_ = 0;  // guarded by sleep_mu_
  bool stopping_ = false;      // guarded by sleep_mu_

  // Timer facility. The thread starts on first ScheduleAt.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::map<uint64_t, TimerEntry> timers_;  // guarded by timer_mu_
  uint64_t next_timer_id_ = 1;             // guarded by timer_mu_
  bool timer_stop_ = false;                // guarded by timer_mu_
  std::thread timer_thread_;               // started under timer_mu_

  // Queue-depth gauges read the depth_ atomics only (no locks), so the
  // registry-lock-during-scrape rule is trivially satisfied.
  std::optional<ScopedCallbackGauge> depth_gauges_[kNumTaskPriorities];
};

}  // namespace cod

#endif  // COD_COMMON_TASK_SCHEDULER_H_
