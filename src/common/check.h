// Invariant-checking macros used across codlib.
//
// The library follows the no-exceptions error model: recoverable failures are
// reported through cod::Status (see common/status.h), while violated
// programming invariants abort the process with a diagnostic. COD_CHECK is
// always on; COD_DCHECK compiles out in NDEBUG builds.

#ifndef COD_COMMON_CHECK_H_
#define COD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cod::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "COD_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace cod::internal

#define COD_CHECK(expr)                                      \
  do {                                                       \
    if (!(expr)) {                                           \
      ::cod::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                        \
  } while (false)

#define COD_CHECK_EQ(a, b) COD_CHECK((a) == (b))
#define COD_CHECK_NE(a, b) COD_CHECK((a) != (b))
#define COD_CHECK_LT(a, b) COD_CHECK((a) < (b))
#define COD_CHECK_LE(a, b) COD_CHECK((a) <= (b))
#define COD_CHECK_GT(a, b) COD_CHECK((a) > (b))
#define COD_CHECK_GE(a, b) COD_CHECK((a) >= (b))

#ifdef NDEBUG
#define COD_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define COD_DCHECK(expr) COD_CHECK(expr)
#endif

#endif  // COD_COMMON_CHECK_H_
