// DEPRECATED compatibility shim over TaskScheduler.
//
// The flat FIFO ThreadPool is gone; every in-tree consumer now takes a
// TaskScheduler (per-worker priority deques, work stealing, TaskGroups —
// see common/task_scheduler.h). This adapter keeps the old Submit/WaitIdle
// surface compiling for out-of-tree callers for one release: Submit maps to
// the rebuild priority class, WaitIdle to a TaskGroup over everything this
// adapter submitted, and the adapter converts implicitly to TaskScheduler&
// so it can be handed to the migrated APIs. New code should construct
// TaskScheduler directly.

#ifndef COD_COMMON_THREAD_POOL_H_
#define COD_COMMON_THREAD_POOL_H_

#include <functional>
#include <memory>
#include <utility>

#include "common/task_scheduler.h"

namespace cod {

class ThreadPoolAdapter {
 public:
  // `num_threads` == 0 uses the hardware concurrency (at least 1).
  explicit ThreadPoolAdapter(size_t num_threads)
      : scheduler_(num_threads), all_(scheduler_) {}

  ThreadPoolAdapter(const ThreadPoolAdapter&) = delete;
  ThreadPoolAdapter& operator=(const ThreadPoolAdapter&) = delete;

  size_t num_threads() const { return scheduler_.num_threads(); }
  bool IsWorkerThread() const { return scheduler_.IsWorkerThread(); }

  void Submit(std::function<void()> task) {
    scheduler_.Submit(TaskPriority::kRebuild, all_, std::move(task));
  }

  // Blocks until every task submitted THROUGH THIS ADAPTER has finished
  // (the scheduler may carry other work; that is none of our business).
  void WaitIdle() { all_.Wait(); }

  // The migrated APIs take TaskScheduler; old call sites holding a pool can
  // pass it straight through.
  operator TaskScheduler&() { return scheduler_; }
  TaskScheduler& scheduler() { return scheduler_; }

 private:
  TaskScheduler scheduler_;
  TaskGroup all_;
};

// One release of grace for the old name. Warnings fire at use sites of the
// alias only, not inside this header.
using ThreadPool [[deprecated(
    "use TaskScheduler (common/task_scheduler.h)")]] = ThreadPoolAdapter;

}  // namespace cod

#endif  // COD_COMMON_THREAD_POOL_H_
