// A small fixed-size thread pool for embarrassingly parallel batch work
// (parallel RR sampling, parallel index construction).
//
// Deliberately minimal: submit void() tasks, then WaitIdle(). Tasks must not
// throw (the library is exception-free) and must synchronize their own
// outputs (the canonical pattern here is one pre-allocated output slot per
// task, merged after WaitIdle).

#ifndef COD_COMMON_THREAD_POOL_H_
#define COD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace cod {

class ThreadPool {
 public:
  // `num_threads` == 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) {
      num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  size_t num_threads() const { return workers_.size(); }

  // True when the calling thread is one of THIS pool's workers. Blocking on
  // this pool from such a thread can deadlock (the wait occupies the very
  // slot the awaited tasks need); RunQueryBatch fails fast on it in debug
  // builds.
  bool IsWorkerThread() const { return CurrentPool() == this; }

  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      COD_CHECK(!stopping_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    wake_.notify_one();
  }

  // Blocks until every submitted task has finished.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  static const ThreadPool*& CurrentPool() {
    static thread_local const ThreadPool* current = nullptr;
    return current;
  }

  void WorkerLoop() {
    CurrentPool() = this;
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cod

#endif  // COD_COMMON_THREAD_POOL_H_
