// Failpoints: named failure sites for fault-injection testing (the
// RocksDB/TiKV idiom). Code marks a site with
//
//     if (COD_FAILPOINT("dynamic_service/rebuild")) {
//       return Status::IoError("failpoint dynamic_service/rebuild armed");
//     }
//
// and a test arms it for its scope:
//
//     ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/2);
//
// making the next two passes through the site fail, after which it behaves
// normally again. Sites are inert by default: an unarmed process pays one
// relaxed atomic load per pass and never takes the registry lock. Builds
// that must not carry any injection machinery can define
// COD_DISABLE_FAILPOINTS to compile every site down to `false`.
//
// Fuzz mode (ArmRandom): instead of naming one site, every site trips
// independently with a fixed probability, driven by a deterministic
// SplitMix64 stream — chaos-monkey coverage of failure-path interleavings
// the hand-armed tests never compose. The draw sequence is deterministic
// per seed but its assignment to sites depends on thread interleaving, so
// fuzz suites assert invariants (no crash, taxonomy respected, service
// still serves), never exact outcomes.
//
// Registered sites: "dynamic_service/rebuild" (epoch rebuild, before any
// build work), "himor/build" (both HIMOR builders), "query_batch/worker"
// (per query in a batch worker), "graph_io/load_edge_list" /
// "graph_io/load_attributes" (loader I/O), "rr/sample" (per RR-sample
// draw on the serial path), "influence/parallel_pool" (per RR-sample draw
// inside a parallel sampling chunk — mid-pool cancellation),
// "engine_core/codr_cache" (CODR hierarchy-cache first-touch build),
// "scheduler/admission" (TaskScheduler::ShouldShed — forces the shed
// verdict, tripping the batch degradation ladder deterministically),
// "storage/snapshot_write" (epoch snapshot encode/open, before any byte
// reaches disk), "storage/snapshot_fsync" (between write and fsync — a
// crash window: the temp file is discarded, the old snapshot survives),
// "storage/snapshot_load" (snapshot file read during recovery — transient
// I/O error, NOT corruption, so the file is skipped without quarantine),
// "serving/shard_deadline" (sharded batch router, polled once per shard in
// ascending shard order before submission — a trip serves that whole
// shard's queries as degraded non-answers, emulating a shard-wide deadline
// miss). The full site inventory with trip semantics is tabulated in
// docs/architecture.md.

#ifndef COD_COMMON_FAILPOINT_H_
#define COD_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace cod {

// Process-wide registry; all methods are thread-safe.
class Failpoints {
 public:
  static Failpoints& Instance();

  // Makes the next `count` passes through `name` fail (count < 0: every
  // pass until disarmed). Re-arming replaces the remaining count.
  void Arm(const std::string& name, int64_t count = 1);
  void Disarm(const std::string& name);
  void DisarmAll();

  // Fuzz mode: every site trips independently with `trip_probability` on
  // each pass, drawn from a deterministic SplitMix64 stream seeded by
  // `seed`. Composes with explicitly armed sites (either fires the site).
  // Trips count into per-site TriggerCount and the registry trip counter
  // exactly like armed hits. Disable with DisarmRandom (DisarmAll also
  // clears it). `trip_probability` is clamped to [0, 1].
  void ArmRandom(uint64_t seed, double trip_probability);
  void DisarmRandom();

  // Called by COD_FAILPOINT at the site; consumes one armed hit.
  bool ShouldFail(const char* name);

  // Times `name` actually fired (survives Disarm; reset by DisarmAll).
  uint64_t TriggerCount(const std::string& name) const;

 private:
  Failpoints() = default;

  struct Point {
    int64_t remaining = 0;  // < 0: always fire
    uint64_t triggered = 0;
  };

  // Fast-path gate: number of currently armed points, plus one while fuzz
  // mode is on. Relaxed is enough — arming a failpoint happens-before the
  // tested action through whatever synchronization starts that action
  // (thread creation, task submit).
  std::atomic<int> num_armed_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  // Fuzz-mode state, guarded by mu_ (the fuzz draw already takes the lock
  // to record the trip, so a plain state word suffices).
  bool fuzz_enabled_ = false;
  double fuzz_probability_ = 0.0;
  uint64_t fuzz_state_ = 0;
};

// Arms fuzz mode for the enclosing scope; restores sanity on destruction so
// a failing fuzz test cannot leak random failures into later tests.
class ScopedRandomFailpoints {
 public:
  ScopedRandomFailpoints(uint64_t seed, double trip_probability) {
    Failpoints::Instance().ArmRandom(seed, trip_probability);
  }
  ~ScopedRandomFailpoints() { Failpoints::Instance().DisarmRandom(); }

  ScopedRandomFailpoints(const ScopedRandomFailpoints&) = delete;
  ScopedRandomFailpoints& operator=(const ScopedRandomFailpoints&) = delete;
};

// Arms a failpoint for the enclosing scope; disarms on destruction so a
// failing test cannot leak an armed site into later tests.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, int64_t count = 1)
      : name_(std::move(name)) {
    Failpoints::Instance().Arm(name_, count);
  }
  ~ScopedFailpoint() { Failpoints::Instance().Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

#if defined(COD_DISABLE_FAILPOINTS)
#define COD_FAILPOINT(name) false
#else
#define COD_FAILPOINT(name) (::cod::Failpoints::Instance().ShouldFail(name))
#endif

}  // namespace cod

#endif  // COD_COMMON_FAILPOINT_H_
