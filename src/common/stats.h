// Small summary-statistics helpers used by the evaluation harness.

#ifndef COD_COMMON_STATS_H_
#define COD_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace cod {

// One-pass accumulator for mean/min/max/stddev of a stream of doubles.
class Accumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  double StdDev() const;
  double Min() const;
  double Max() const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
// Returns 0 for an empty input. The input is copied and sorted.
double Quantile(std::vector<double> values, double q);

}  // namespace cod

#endif  // COD_COMMON_STATS_H_
