// Serving-stack observability: a process-wide registry of named counters,
// gauges, and fixed-bucket latency histograms.
//
// Design goals, in order:
//  1. Hot-path cost. Every event is one relaxed atomic add into a
//     per-thread-sharded, cache-line-padded cell — no locks, no CAS loops,
//     no clock reads beyond what the caller already measured. Shards are
//     merged only on scrape (ExpositionText / JsonDump / Value), which is
//     the cold path.
//  2. Cheap off switch. MetricsRegistry::SetEnabled(false) turns every
//     event into a single relaxed load + branch; defining
//     COD_METRICS_DISABLED at compile time removes even that (events become
//     empty inline functions; the registry itself still links so scrape
//     endpoints keep working and report zeros).
//  3. Handle-oriented API. Look a metric up ONCE (under the registry lock)
//     and keep the returned pointer — handles are never invalidated, so the
//     serving path touches the lock only at first use:
//
//         static Counter* hits =
//             MetricsRegistry::Instance().GetCounter("cod_index_hits_total");
//         hits->Increment();
//
// Label convention: Prometheus-style labels are part of the metric name
// string, e.g. "cod_query_latency_seconds{variant=\"codl\"}". The
// exposition splices histogram suffixes (_bucket/_sum/_count) and the "le"
// label into the right place.
//
// Metrics are process-wide and cumulative: two services incrementing the
// same name share one time series, exactly like two handlers sharing one
// Prometheus counter.

#ifndef COD_COMMON_METRICS_H_
#define COD_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/timer.h"

namespace cod {

class MetricsRegistry;

namespace metrics_internal {

// Shard count: enough to keep a few serving threads off each other's cache
// lines without bloating every metric. Threads are assigned round-robin.
inline constexpr size_t kShards = 16;

// One padded atomic cell; a full array of these is one shard row.
struct alignas(64) Cell {
  std::atomic<uint64_t> value{0};
};

// Padded double cell for histogram sums (fetch_add on atomic<double> is
// C++20; shard-local, so contention — and thus its internal CAS — is rare).
struct alignas(64) DoubleCell {
  std::atomic<double> value{0.0};
};

// Stable per-thread shard index in [0, kShards).
size_t ThisThreadShard();

}  // namespace metrics_internal

// Monotonic counter. Increment is wait-free; Value() merges the shards.
class Counter {
 public:
  void Increment(uint64_t n = 1);
  uint64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  metrics_internal::Cell cells_[metrics_internal::kShards];
};

// Settable point-in-time value (epoch number, pool size, ...). Writes are
// rare, so a single atomic cell suffices.
class Gauge {
 public:
  void Set(double v);
  void Add(double d);
  double Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram (Prometheus semantics: bucket counts are
// cumulative in the exposition, "le" upper bounds, implicit +Inf bucket).
// Observe is wait-free: one relaxed add into the bucket cell plus relaxed
// adds into the sum/count cells of the caller's shard.
class Histogram {
 public:
  void Observe(double value);

  // Merged scrape-side views.
  uint64_t Count() const;
  double Sum() const;
  // Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  std::vector<uint64_t> BucketCounts() const;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  // Default latency buckets: 100us .. 10s, roughly 1-2.5-5 per decade.
  static std::span<const double> DefaultLatencyBounds();

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::span<const double> bounds);

  std::string name_;
  std::vector<double> bounds_;  // strictly increasing upper bounds
  // cells_[shard * (bounds_.size() + 1) + bucket].
  std::vector<metrics_internal::Cell> cells_;
  metrics_internal::DoubleCell sum_cells_[metrics_internal::kShards];
  metrics_internal::Cell count_cells_[metrics_internal::kShards];
};

// Per-metric histogram configuration, applied at FIRST registration only
// (bounds are fixed for the metric's lifetime; later GetHistogram calls for
// the same name return the existing object and ignore the options).
struct HistogramOptions {
  // Bucket upper bounds, strictly increasing; empty means the default
  // latency buckets (Histogram::DefaultLatencyBounds).
  std::vector<double> bounds;

  // `count` exponentially spaced bounds: start, start*factor, ... Handy for
  // stages whose range the default buckets would saturate (factor > 1,
  // count >= 1).
  static HistogramOptions Exponential(double start, double factor,
                                      size_t count);
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // Find-or-create by full name (labels included). The returned handle is
  // stable for the process lifetime; repeated calls return the same object.
  // Takes the registry lock — call once and cache the handle on hot paths.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // `bounds` must be strictly increasing; empty uses the default latency
  // buckets. Bounds are fixed at creation (later calls ignore them).
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> bounds = {});
  // Options form: per-metric bucket overrides at first registration, for
  // histograms whose range the default latency buckets would saturate
  // (e.g. the sub-millisecond RR merge stage, or multi-minute builds).
  Histogram* GetHistogram(std::string_view name,
                          const HistogramOptions& options);

  // Callback gauges are evaluated at scrape time (epoch age, queue depth —
  // values that only exist as "now minus something"). The callback runs
  // under the registry lock and must not call back into the registry.
  // Returns an id for Unregister; see ScopedCallbackGauge for the RAII form.
  uint64_t RegisterCallbackGauge(std::string name,
                                 std::function<double()> fn);
  void UnregisterCallbackGauge(uint64_t id);

  // Prometheus text exposition: counters and gauges as single samples,
  // histograms as _bucket{le=...}/_sum/_count families, callback gauges
  // evaluated inline. Metrics appear in registration order.
  std::string ExpositionText() const;
  // One JSON object for benches and dashboards:
  //   {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  //    "sum":..,"buckets":[..]}}}
  std::string JsonDump() const;

  // Runtime off switch: while disabled, Increment/Observe/Set are one
  // relaxed load + branch. Scrapes still work (values freeze).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() {
#if defined(COD_METRICS_DISABLED)
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  // Zeroes every cell and gauge (registrations and handles survive). Tests
  // only — concurrent writers may re-add pre-reset deltas... their events,
  // not corruption.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  struct CallbackGauge {
    uint64_t id;
    std::string name;
    std::function<double()> fn;
  };

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  // unique_ptr storage: handle addresses must survive container growth, and
  // the metric types are immovable (they hold atomics).
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
  std::vector<CallbackGauge> callback_gauges_;
  uint64_t next_callback_id_ = 1;
};

// RAII registration of a scrape-time callback gauge; unregisters on
// destruction so a dying owner can never leave a dangling callback behind.
class ScopedCallbackGauge {
 public:
  ScopedCallbackGauge(std::string name, std::function<double()> fn)
      : id_(MetricsRegistry::Instance().RegisterCallbackGauge(
            std::move(name), std::move(fn))) {}
  ~ScopedCallbackGauge() {
    MetricsRegistry::Instance().UnregisterCallbackGauge(id_);
  }
  ScopedCallbackGauge(const ScopedCallbackGauge&) = delete;
  ScopedCallbackGauge& operator=(const ScopedCallbackGauge&) = delete;

 private:
  uint64_t id_;
};

// Times a stage and records the elapsed seconds into `histogram` on
// destruction. A null histogram (or disabled registry) records nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
#if !defined(COD_METRICS_DISABLED)
    if (histogram_ != nullptr && MetricsRegistry::enabled()) {
      histogram_->Observe(timer_.ElapsedSeconds());
    }
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  Histogram* histogram_;
  WallTimer timer_;
};

#if defined(COD_METRICS_DISABLED)
inline void Counter::Increment(uint64_t) {}
inline void Gauge::Set(double) {}
inline void Gauge::Add(double) {}
inline void Histogram::Observe(double) {}
#else
inline void Counter::Increment(uint64_t n) {
  if (!MetricsRegistry::enabled()) return;
  cells_[metrics_internal::ThisThreadShard()].value.fetch_add(
      n, std::memory_order_relaxed);
}
#endif

}  // namespace cod

#endif  // COD_COMMON_METRICS_H_
