#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace cod {

std::atomic<bool> MetricsRegistry::enabled_{true};

namespace metrics_internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace metrics_internal

using metrics_internal::kShards;
using metrics_internal::ThisThreadShard;

namespace {

// %.9g keeps doubles round-trippable enough for dashboards while avoiding
// the 17-digit noise of max_digits10.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  *out += buf;
}

// Splits "base{labels}" into base and the label body (empty when absent).
std::pair<std::string_view, std::string_view> SplitLabels(
    std::string_view name) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

// "base_bucket{labels,le=\"0.01\"} " — the sample name of one bucket line.
void AppendBucketSample(std::string* out, std::string_view base,
                        std::string_view labels, const char* le) {
  out->append(base);
  out->append("_bucket{");
  if (!labels.empty()) {
    out->append(labels);
    out->append(",");
  }
  out->append("le=\"");
  out->append(le);
  out->append("\"} ");
}

// JSON string escaping for metric names (quotes and backslashes only; names
// are ASCII identifiers plus label syntax).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

// ---------------------------------------------------------------- Counter --

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

// ------------------------------------------------------------------ Gauge --

#if !defined(COD_METRICS_DISABLED)
void Gauge::Set(double v) {
  if (!MetricsRegistry::enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::Add(double d) {
  if (!MetricsRegistry::enabled()) return;
  value_.fetch_add(d, std::memory_order_relaxed);
}
#endif

double Gauge::Value() const {
  return value_.load(std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram --

std::span<const double> Histogram::DefaultLatencyBounds() {
  static const double kBounds[] = {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
                                   1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
                                   1.0,  2.5,    5.0,  10.0};
  return kBounds;
}

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)) {
  if (bounds.empty()) bounds = DefaultLatencyBounds();
  bounds_.assign(bounds.begin(), bounds.end());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    COD_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  cells_ = std::vector<metrics_internal::Cell>(kShards *
                                               (bounds_.size() + 1));
}

#if !defined(COD_METRICS_DISABLED)
void Histogram::Observe(double value) {
  if (!MetricsRegistry::enabled()) return;
  // "le" is inclusive: a value equal to a bound belongs to that bound's
  // bucket, so pick the first bound >= value.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  const size_t shard = ThisThreadShard();
  cells_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  sum_cells_[shard].value.fetch_add(value, std::memory_order_relaxed);
  count_cells_[shard].value.fetch_add(1, std::memory_order_relaxed);
}
#endif

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& cell : count_cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& cell : sum_cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  const size_t num_buckets = bounds_.size() + 1;
  std::vector<uint64_t> counts(num_buckets, 0);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t b = 0; b < num_buckets; ++b) {
      counts[b] +=
          cells_[s * num_buckets + b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

// --------------------------------------------------------------- Registry --

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never dies
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return it->second;
  Counter* created = counters_.emplace_back(
      std::unique_ptr<Counter>(new Counter(std::string(name)))).get();
  counter_index_.emplace(created->name_, created);
  return created;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return it->second;
  Gauge* created = gauges_.emplace_back(
      std::unique_ptr<Gauge>(new Gauge(std::string(name)))).get();
  gauge_index_.emplace(created->name_, created);
  return created;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) return it->second;
  Histogram* created = histograms_.emplace_back(
      std::unique_ptr<Histogram>(new Histogram(std::string(name), bounds)))
      .get();
  histogram_index_.emplace(created->name_, created);
  return created;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options) {
  return GetHistogram(name, std::span<const double>(options.bounds));
}

HistogramOptions HistogramOptions::Exponential(double start, double factor,
                                               size_t count) {
  COD_CHECK(start > 0.0);
  COD_CHECK(factor > 1.0);
  COD_CHECK(count >= 1);
  HistogramOptions options;
  options.bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    options.bounds.push_back(bound);
    bound *= factor;
  }
  return options;
}

uint64_t MetricsRegistry::RegisterCallbackGauge(std::string name,
                                                std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_callback_id_++;
  callback_gauges_.push_back(CallbackGauge{id, std::move(name),
                                           std::move(fn)});
  return id;
}

void MetricsRegistry::UnregisterCallbackGauge(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(callback_gauges_,
                [id](const CallbackGauge& g) { return g.id == id; });
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  std::unordered_set<std::string_view> typed;

  for (const auto& cp : counters_) {
    const Counter& c = *cp;
    const auto [base, labels] = SplitLabels(c.name_);
    if (typed.insert(base).second) {
      out += "# TYPE ";
      out += base;
      out += " counter\n";
    }
    out += c.name_;
    out += " ";
    AppendUint(&out, c.Value());
    out += "\n";
  }

  for (const auto& gp : gauges_) {
    const Gauge& g = *gp;
    const auto [base, labels] = SplitLabels(g.name_);
    if (typed.insert(base).second) {
      out += "# TYPE ";
      out += base;
      out += " gauge\n";
    }
    out += g.name_;
    out += " ";
    AppendDouble(&out, g.Value());
    out += "\n";
  }

  for (const CallbackGauge& g : callback_gauges_) {
    const auto [base, labels] = SplitLabels(std::string_view(g.name));
    if (typed.insert(base).second) {
      out += "# TYPE ";
      out += base;
      out += " gauge\n";
    }
    out += g.name;
    out += " ";
    AppendDouble(&out, g.fn());
    out += "\n";
  }

  for (const auto& hp : histograms_) {
    const Histogram& h = *hp;
    const auto [base, labels] = SplitLabels(h.name_);
    if (typed.insert(base).second) {
      out += "# TYPE ";
      out += base;
      out += " histogram\n";
    }
    const std::vector<uint64_t> counts = h.BucketCounts();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.bounds_.size(); ++b) {
      cumulative += counts[b];
      char le[64];
      std::snprintf(le, sizeof(le), "%.9g", h.bounds_[b]);
      AppendBucketSample(&out, base, labels, le);
      AppendUint(&out, cumulative);
      out += "\n";
    }
    cumulative += counts.back();
    AppendBucketSample(&out, base, labels, "+Inf");
    AppendUint(&out, cumulative);
    out += "\n";

    const auto suffixed = [&](const char* suffix) {
      out += base;
      out += suffix;
      if (!labels.empty()) {
        out += "{";
        out += labels;
        out += "}";
      }
      out += " ";
    };
    suffixed("_sum");
    AppendDouble(&out, h.Sum());
    out += "\n";
    suffixed("_count");
    AppendUint(&out, cumulative);
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::JsonDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& cp : counters_) {
    const Counter& c = *cp;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, c.name_);
    out += ":";
    AppendUint(&out, c.Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& gp : gauges_) {
    const Gauge& g = *gp;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, g.name_);
    out += ":";
    AppendDouble(&out, g.Value());
  }
  for (const CallbackGauge& g : callback_gauges_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, g.name);
    out += ":";
    AppendDouble(&out, g.fn());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& hp : histograms_) {
    const Histogram& h = *hp;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, h.name_);
    out += ":{\"count\":";
    AppendUint(&out, h.Count());
    out += ",\"sum\":";
    AppendDouble(&out, h.Sum());
    out += ",\"bounds\":[";
    for (size_t b = 0; b < h.bounds_.size(); ++b) {
      if (b > 0) out += ",";
      AppendDouble(&out, h.bounds_[b]);
    }
    out += "],\"counts\":[";
    const std::vector<uint64_t> counts = h.BucketCounts();
    for (size_t b = 0; b < counts.size(); ++b) {
      if (b > 0) out += ",";
      AppendUint(&out, counts[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& cp : counters_) {
    Counter& c = *cp;
    for (auto& cell : c.cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gp : gauges_) {
    Gauge& g = *gp;
    g.value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& hp : histograms_) {
    Histogram& h = *hp;
    for (auto& cell : h.cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : h.sum_cells_) {
      cell.value.store(0.0, std::memory_order_relaxed);
    }
    for (auto& cell : h.count_cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace cod
