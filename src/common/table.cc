#include "common/table.h"

#include <cstdio>

#include "common/check.h"

namespace cod {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  COD_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(width[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  std::string sep(total > 2 ? total - 2 : total, '-');
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", v);
  return buf;
}

std::string TablePrinter::Fmt(int v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", v);
  return buf;
}

}  // namespace cod
