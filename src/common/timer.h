// Wall-clock timing helper for benches and experiments.

#ifndef COD_COMMON_TIMER_H_
#define COD_COMMON_TIMER_H_

#include <chrono>

namespace cod {

// Measures elapsed wall time since construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cod

#endif  // COD_COMMON_TIMER_H_
