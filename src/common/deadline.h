// Deadlines, cancellation, and the Budget they combine into — the single
// timeout mechanism of codlib.
//
// A Deadline is a point on the monotonic clock; hot loops (RR sampling,
// compressed/independent evaluation, the LORE edge scan, HIMOR construction)
// poll Expired() at coarse check intervals — once per RR sample, per source,
// or per few-thousand edges — so an expired budget surfaces within one such
// interval rather than after an unbounded run. A CancelToken is a cooperative
// flag a caller flips from another thread; the same check sites observe it.
//
// Budget bundles the two and is what travels through query paths (carried on
// QueryWorkspace) and build paths (an explicit parameter). A
// default-constructed Budget is unlimited and its checks cost one branch —
// no clock read — so the common no-deadline path stays free.
//
// Determinism note (exploited by the tests): Deadline::After truncates toward
// zero, so any sub-nanosecond budget (e.g. 1e-12 s) produces a deadline equal
// to "now" that is deterministically expired at the very first check,
// independent of timing, load, or thread count.

#ifndef COD_COMMON_DEADLINE_H_
#define COD_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <string>

#include "common/status.h"

namespace cod {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default: never expires.
  Deadline() : deadline_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  // Expires `seconds` from now (truncated to the clock's resolution; <= 0
  // is already expired). Anything beyond ~30 years is treated as infinite.
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds >= 1e9) return d;
    const auto now = Clock::now();
    if (seconds <= 0.0) {
      d.deadline_ = now;
      return d;
    }
    d.deadline_ = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    return a.deadline_ <= b.deadline_ ? a : b;
  }

  bool infinite() const { return deadline_ == Clock::time_point::max(); }

  // True once the deadline has been reached. Infinite deadlines never read
  // the clock.
  bool Expired() const {
    return !infinite() && Clock::now() >= deadline_;
  }

  // The underlying monotonic time point (Clock::time_point::max() when
  // infinite) — for condition_variable::wait_until at blocking sites. Check
  // infinite() first: feeding time_point::max() to wait_until can overflow
  // some standard-library clock conversions.
  Clock::time_point time_point() const { return deadline_; }

  // Seconds until expiry: +inf when infinite, negative when overdue.
  double RemainingSeconds() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  Clock::time_point deadline_;
};

// A cooperative cancellation flag: the owner calls Cancel() (from any
// thread); workers observe it at their budget check sites and unwind with
// StatusCode::kCancelled. Reusable via Reset() once no worker observes it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// The execution budget a query or build runs under. Aggregate: construct as
// Budget{deadline} or Budget{deadline, &token}; default is unlimited.
struct Budget {
  Deadline deadline;                     // infinite by default
  const CancelToken* cancel = nullptr;   // optional, not owned

  // kCancelled beats kTimeout so an explicit cancel is never reported as a
  // coincidental deadline miss.
  StatusCode ExhaustedCode() const {
    if (cancel != nullptr && cancel->Cancelled()) {
      return StatusCode::kCancelled;
    }
    if (deadline.Expired()) return StatusCode::kTimeout;
    return StatusCode::kOk;
  }

  bool Exhausted() const { return ExhaustedCode() != StatusCode::kOk; }

  // Status form for Status-returning paths; `what` names the aborted work.
  Status Check(const char* what) const {
    switch (ExhaustedCode()) {
      case StatusCode::kCancelled:
        return Status::Cancelled(std::string(what) + " cancelled");
      case StatusCode::kTimeout:
        return Status::Timeout(std::string(what) + " deadline exceeded");
      default:
        return Status::Ok();
    }
  }
};

}  // namespace cod

#endif  // COD_COMMON_DEADLINE_H_
