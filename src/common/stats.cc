#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cod {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Accumulator::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Accumulator::StdDev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Accumulator::Min() const { return min_; }
double Accumulator::Max() const { return max_; }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  COD_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace cod
