// Deterministic pseudo-random number generation for codlib.
//
// Every randomized component in the library (samplers, generators, query
// workloads) takes an explicit Rng so that experiments are reproducible.
// The engine is xoshiro256++ seeded via SplitMix64, which is both faster and
// smaller-state than std::mt19937_64 while passing the usual statistical
// batteries; sampling helpers avoid modulo bias.

#ifndef COD_COMMON_RANDOM_H_
#define COD_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace cod {

// Stateless seed mixer; also usable as a tiny standalone generator.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ engine with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (uint64_t& word : state_) word = SplitMix64(sm);
  }

  // Raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound) {
    COD_DCHECK(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Derives an independent child generator; useful for giving each unit of
  // work (e.g., each RR-graph batch) its own stream.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cod

#endif  // COD_COMMON_RANDOM_H_
