#include "common/task_scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"

namespace cod {
namespace {

// Identity of the current thread inside its owning scheduler. One scheduler
// deep by construction: workers belong to exactly one scheduler, and nested
// schedulers (e.g. HIMOR's build-local one) run their own worker threads.
struct WorkerTls {
  const TaskScheduler* scheduler = nullptr;
  size_t index = 0;
};

WorkerTls& Tls() {
  static thread_local WorkerTls tls;
  return tls;
}

struct SchedSites {
  Counter* submitted[kNumTaskPriorities];
  Counter* stolen;
  Counter* inline_runs;
  Counter* shed;
  Histogram* queue_delay;
};

const SchedSites& Sites() {
  static const SchedSites sites = [] {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    SchedSites s{};
    for (size_t p = 0; p < kNumTaskPriorities; ++p) {
      s.submitted[p] = reg.GetCounter(
          std::string("cod_sched_submitted_total{priority=\"") +
          TaskPriorityName(static_cast<TaskPriority>(p)) + "\"}");
    }
    s.stolen = reg.GetCounter("cod_sched_stolen_total");
    s.inline_runs = reg.GetCounter("cod_sched_inline_runs_total");
    s.shed = reg.GetCounter("cod_sched_shed_total");
    // 1us .. ~4s; queue delay under healthy load sits in the first buckets,
    // the tail is what the overload bench and alerts watch.
    s.queue_delay = reg.GetHistogram("cod_sched_queue_delay_seconds",
                                     HistogramOptions::Exponential(1e-6, 4.0, 12));
    return s;
  }();
  return sites;
}

bool GroupDone(scheduler_internal::GroupState& state) {
  std::lock_guard<std::mutex> lock(state.mu);
  return state.pending == 0;
}

}  // namespace

const char* TaskPriorityName(TaskPriority priority) {
  switch (priority) {
    case TaskPriority::kInteractive:
      return "interactive";
    case TaskPriority::kRebuild:
      return "rebuild";
    case TaskPriority::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

TaskGroup::TaskGroup(TaskScheduler& scheduler)
    : scheduler_(&scheduler),
      state_(std::make_shared<scheduler_internal::GroupState>()) {}

TaskGroup::~TaskGroup() { Wait(); }

bool TaskGroup::Done() const { return GroupDone(*state_); }

void TaskGroup::Wait() {
  scheduler_internal::GroupState& state = *state_;
  {
    // Resolved groups return without touching the scheduler, so a group may
    // outlive its scheduler once the scheduler's destructor has finished (or
    // orphan-finished) every task submitted against it.
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.pending == 0) return;
  }
  if (!scheduler_->IsWorkerThread()) {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.pending == 0; });
    return;
  }
  // Worker-thread wait: help instead of parking the slot. Each pass either
  // runs one queued task (own group preferred) or sleeps briefly; the group
  // can only be pending because its tasks are queued (we'd find them) or
  // running on other workers (the timed wait picks up their completion).
  for (;;) {
    if (GroupDone(state)) return;
    if (scheduler_->RunOneQueuedTask(state_.get())) continue;
    std::unique_lock<std::mutex> lock(state.mu);
    if (state.pending == 0) return;
    state.done.wait_for(lock, std::chrono::microseconds(200));
  }
}

TaskScheduler::TaskScheduler(const Options& options) : options_(options) {
  size_t n = options.num_threads;
  if (n == 0) n = std::max<size_t>(1, std::thread::hardware_concurrency());
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    depth_[p].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    depth_gauges_[p].emplace(
        std::string("cod_sched_queue_depth{priority=\"") +
            TaskPriorityName(static_cast<TaskPriority>(p)) + "\"}",
        [this, p] {
          return static_cast<double>(
              depth_[p].load(std::memory_order_relaxed));
        });
  }
}

TaskScheduler::~TaskScheduler() {
  // Stop timers first: cancelled timer tasks never run, but their groups see
  // them finished. The timer thread is joined before stopping_ is set, so a
  // last-instant fire still enqueues successfully.
  std::vector<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
    for (auto& [id, entry] : timers_) orphaned.push_back(std::move(entry.task));
    timers_.clear();
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (Task& task : orphaned) {
    if (task.group) FinishGroupTask(task.group);
  }

  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) worker->thread.join();
}

bool TaskScheduler::IsWorkerThread() const {
  return Tls().scheduler == this;
}

void TaskScheduler::Submit(TaskPriority priority, std::function<void()> fn) {
  SubmitTask(priority, nullptr, std::move(fn));
}

void TaskScheduler::Submit(TaskPriority priority, TaskGroup& group,
                           std::function<void()> fn) {
  COD_CHECK(group.scheduler_ == this);
  SubmitTask(priority, group.state_, std::move(fn));
}

void TaskScheduler::SubmitTask(TaskPriority priority, GroupStatePtr group,
                               std::function<void()> fn) {
  Task task;
  task.fn = std::move(fn);
  task.group = std::move(group);
  if (task.group) {
    std::lock_guard<std::mutex> lock(task.group->mu);
    ++task.group->pending;
  }
  Enqueue(priority, std::move(task));
}

void TaskScheduler::Enqueue(TaskPriority priority, Task task) {
  const size_t p = static_cast<size_t>(priority);
  if (MetricsRegistry::enabled()) {
    task.enqueued = Clock::now();
    Sites().submitted[p]->Increment();
  }
  const WorkerTls& tls = Tls();
  const size_t target = tls.scheduler == this
                            ? tls.index
                            : rr_cursor_.fetch_add(
                                  1, std::memory_order_relaxed) %
                                  workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queues[p].push_back(std::move(task));
  }
  depth_[p].fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    COD_CHECK(!stopping_);
    ++submit_epoch_;
  }
  sleep_cv_.notify_one();
}

uint64_t TaskScheduler::ScheduleAt(Clock::time_point when,
                                   TaskPriority priority,
                                   std::function<void()> fn) {
  Task task;
  task.fn = std::move(fn);
  std::lock_guard<std::mutex> lock(timer_mu_);
  COD_CHECK(!timer_stop_);
  const uint64_t id = next_timer_id_++;
  timers_.emplace(id, TimerEntry{when, priority, std::move(task)});
  if (!timer_thread_.joinable()) {
    timer_thread_ = std::thread([this] { TimerLoop(); });
  }
  timer_cv_.notify_all();
  return id;
}

uint64_t TaskScheduler::ScheduleAt(Clock::time_point when,
                                   TaskPriority priority, TaskGroup& group,
                                   std::function<void()> fn) {
  COD_CHECK(group.scheduler_ == this);
  Task task;
  task.fn = std::move(fn);
  task.group = group.state_;
  {
    std::lock_guard<std::mutex> lock(task.group->mu);
    ++task.group->pending;
  }
  std::lock_guard<std::mutex> lock(timer_mu_);
  COD_CHECK(!timer_stop_);
  const uint64_t id = next_timer_id_++;
  timers_.emplace(id, TimerEntry{when, priority, std::move(task)});
  if (!timer_thread_.joinable()) {
    timer_thread_ = std::thread([this] { TimerLoop(); });
  }
  timer_cv_.notify_all();
  return id;
}

bool TaskScheduler::CancelTimer(uint64_t timer_id) {
  Task cancelled;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    auto it = timers_.find(timer_id);
    if (it == timers_.end()) return false;
    cancelled = std::move(it->second.task);
    timers_.erase(it);
  }
  // The cancelled task counts as finished for its group (it will never run).
  if (cancelled.group) FinishGroupTask(cancelled.group);
  return true;
}

bool TaskScheduler::ShouldShed(TaskPriority priority, size_t incoming) {
  const size_t p = static_cast<size_t>(priority);
  bool shed = COD_FAILPOINT("scheduler/admission");
  if (!shed && options_.max_queue_depth[p] > 0) {
    const size_t depth = depth_[p].load(std::memory_order_relaxed);
    shed = depth + incoming > options_.max_queue_depth[p];
  }
  if (shed && MetricsRegistry::enabled()) Sites().shed->Increment();
  return shed;
}

bool TaskScheduler::TryDequeue(size_t start,
                               const scheduler_internal::GroupState* prefer,
                               Task* out) {
  const size_t n = workers_.size();
  if (prefer != nullptr) {
    // Help-first pass: any queued task of the awaited group, wherever it
    // sits. Scanning inside a deque is fine — groups are small and this only
    // runs while a waiter would otherwise sleep.
    for (size_t p = 0; p < kNumTaskPriorities; ++p) {
      for (size_t i = 0; i < n; ++i) {
        const size_t v = (start + i) % n;
        Worker& w = *workers_[v];
        std::lock_guard<std::mutex> lock(w.mu);
        auto& q = w.queues[p];
        for (auto it = q.begin(); it != q.end(); ++it) {
          if (it->group.get() != prefer) continue;
          *out = std::move(*it);
          q.erase(it);
          depth_[p].fetch_sub(1, std::memory_order_relaxed);
          if (v != start && MetricsRegistry::enabled()) {
            Sites().stolen->Increment();
          }
          return true;
        }
      }
    }
  }
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    for (size_t i = 0; i < n; ++i) {
      const size_t v = (start + i) % n;
      Worker& w = *workers_[v];
      std::lock_guard<std::mutex> lock(w.mu);
      auto& q = w.queues[p];
      if (q.empty()) continue;
      *out = std::move(q.front());
      q.pop_front();
      depth_[p].fetch_sub(1, std::memory_order_relaxed);
      if (v != start && MetricsRegistry::enabled()) {
        Sites().stolen->Increment();
      }
      return true;
    }
  }
  return false;
}

bool TaskScheduler::RunOneQueuedTask(
    const scheduler_internal::GroupState* prefer) {
  const WorkerTls& tls = Tls();
  COD_CHECK(tls.scheduler == this);
  Task task;
  if (!TryDequeue(tls.index, prefer, &task)) return false;
  if (MetricsRegistry::enabled()) Sites().inline_runs->Increment();
  RunTask(task);
  return true;
}

void TaskScheduler::RunTask(Task& task) {
  if (task.enqueued != Clock::time_point{} && MetricsRegistry::enabled()) {
    Sites().queue_delay->Observe(
        std::chrono::duration<double>(Clock::now() - task.enqueued).count());
  }
  task.fn();
  // Drop the closure before signalling the group: a waiter may tear down
  // state the closure's captures point at the moment pending hits zero.
  task.fn = nullptr;
  if (task.group) FinishGroupTask(task.group);
}

void TaskScheduler::FinishGroupTask(const GroupStatePtr& group) {
  // Decrement and notify under the lock — the waiter's predicate read and
  // its wait must not interleave with the notify (same TSAN lesson as the
  // batch latch this replaces).
  std::lock_guard<std::mutex> lock(group->mu);
  COD_CHECK(group->pending > 0);
  if (--group->pending == 0) group->done.notify_all();
}

void TaskScheduler::WorkerLoop(size_t index) {
  Tls() = WorkerTls{this, index};
  for (;;) {
    Task task;
    if (TryDequeue(index, nullptr, &task)) {
      // Recruit a sibling while more work is queued: our notify may have
      // been the only one in flight for several pushes.
      for (size_t p = 0; p < kNumTaskPriorities; ++p) {
        if (depth_[p].load(std::memory_order_relaxed) > 0) {
          sleep_cv_.notify_one();
          break;
        }
      }
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (stopping_) break;
    const uint64_t seen = submit_epoch_;
    lock.unlock();
    // Rescan after recording the epoch: a Submit that raced with the empty
    // scan above either published its push before this rescan, or bumps the
    // epoch past `seen` and defeats the wait below. Either way it is seen.
    if (TryDequeue(index, nullptr, &task)) {
      RunTask(task);
      continue;
    }
    lock.lock();
    sleep_cv_.wait(lock,
                   [this, seen] { return stopping_ || submit_epoch_ != seen; });
    if (stopping_) break;
  }
  // Shutdown drain: run whatever is still queued (all workers drain
  // cooperatively), preserving the old pool's destructor contract.
  Task task;
  while (TryDequeue(index, nullptr, &task)) RunTask(task);
}

void TaskScheduler::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    auto best = timers_.begin();
    for (auto it = std::next(timers_.begin()); it != timers_.end(); ++it) {
      if (it->second.when < best->second.when) best = it;
    }
    const Clock::time_point when = best->second.when;
    if (Clock::now() < when) {
      timer_cv_.wait_until(lock, when);
      continue;
    }
    TimerEntry entry = std::move(best->second);
    timers_.erase(best);
    lock.unlock();
    Enqueue(entry.priority, std::move(entry.task));
    lock.lock();
  }
}

}  // namespace cod
