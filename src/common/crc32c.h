// CRC32C (Castagnoli) checksums for the on-disk formats.
//
// Every durable artifact (dendrogram / HIMOR files, epoch snapshot
// sections) carries a CRC32C so that corruption — bit rot, torn writes,
// truncation — is detected at load time instead of materializing as a
// silently-wrong structure. The Castagnoli polynomial is the storage-stack
// standard (iSCSI, ext4, LevelDB/RocksDB) because it catches all 1- and
// 2-bit errors and all burst errors up to 32 bits.
//
// This is the portable slicing-by-8 software implementation (~1 byte/cycle);
// checksumming is a negligible fraction of snapshot serialization cost, so
// no hardware (SSE4.2) dispatch is wired up.

#ifndef COD_COMMON_CRC32C_H_
#define COD_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cod {

// Extends a running CRC with `n` more bytes. Start a fresh computation with
// `crc == 0`; the returned value is final (pre/post-inversion handled
// internally), so chunked and one-shot computations agree:
//   Crc32c(ab) == Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view bytes) {
  return Crc32cExtend(0, bytes.data(), bytes.size());
}

}  // namespace cod

#endif  // COD_COMMON_CRC32C_H_
