#include "common/failpoint.h"

#include "common/metrics.h"

namespace cod {

Failpoints& Failpoints::Instance() {
  static Failpoints instance;
  return instance;
}

void Failpoints::Arm(const std::string& name, int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& point = points_[name];
  const bool was_armed = point.remaining != 0;
  point.remaining = count;
  const bool is_armed = point.remaining != 0;
  if (is_armed && !was_armed) {
    num_armed_.fetch_add(1, std::memory_order_relaxed);
  } else if (!is_armed && was_armed) {
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return;
  if (it->second.remaining != 0) {
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.remaining = 0;  // keep `triggered` inspectable after the fact
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  num_armed_.store(0, std::memory_order_relaxed);
  points_.clear();
}

bool Failpoints::ShouldFail(const char* name) {
  if (num_armed_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || it->second.remaining == 0) return false;
  Point& point = it->second;
  if (point.remaining > 0 && --point.remaining == 0) {
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  ++point.triggered;
  // Operators alert on injected-fault rates the same way as on organic
  // failures; the lookup is once per *armed* trip, so no hot-path cost.
  static Counter* trips =
      MetricsRegistry::Instance().GetCounter("cod_failpoint_trips_total");
  trips->Increment();
  return true;
}

uint64_t Failpoints::TriggerCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggered;
}

}  // namespace cod
