#include "common/failpoint.h"

#include "common/metrics.h"
#include "common/random.h"

namespace cod {

Failpoints& Failpoints::Instance() {
  static Failpoints instance;
  return instance;
}

void Failpoints::Arm(const std::string& name, int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& point = points_[name];
  const bool was_armed = point.remaining != 0;
  point.remaining = count;
  const bool is_armed = point.remaining != 0;
  if (is_armed && !was_armed) {
    num_armed_.fetch_add(1, std::memory_order_relaxed);
  } else if (!is_armed && was_armed) {
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return;
  if (it->second.remaining != 0) {
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.remaining = 0;  // keep `triggered` inspectable after the fact
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  num_armed_.store(0, std::memory_order_relaxed);
  points_.clear();
  fuzz_enabled_ = false;
  fuzz_probability_ = 0.0;
}

void Failpoints::ArmRandom(uint64_t seed, double trip_probability) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fuzz_enabled_) num_armed_.fetch_add(1, std::memory_order_relaxed);
  fuzz_enabled_ = true;
  fuzz_probability_ =
      trip_probability < 0.0 ? 0.0
                             : (trip_probability > 1.0 ? 1.0 : trip_probability);
  fuzz_state_ = seed;
}

void Failpoints::DisarmRandom() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fuzz_enabled_) num_armed_.fetch_sub(1, std::memory_order_relaxed);
  fuzz_enabled_ = false;
  fuzz_probability_ = 0.0;
}

bool Failpoints::ShouldFail(const char* name) {
  if (num_armed_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  bool fire = false;
  auto it = points_.find(name);
  if (it != points_.end() && it->second.remaining != 0) {
    Point& point = it->second;
    if (point.remaining > 0 && --point.remaining == 0) {
      num_armed_.fetch_sub(1, std::memory_order_relaxed);
    }
    fire = true;
  }
  if (!fire && fuzz_enabled_) {
    // 53-bit uniform draw, same construction as Rng::Uniform.
    const double u =
        static_cast<double>(SplitMix64(fuzz_state_) >> 11) * 0x1.0p-53;
    fire = u < fuzz_probability_;
  }
  if (!fire) return false;
  ++points_[name].triggered;
  // Operators alert on injected-fault rates the same way as on organic
  // failures; the lookup is once per *armed* trip, so no hot-path cost.
  static Counter* trips =
      MetricsRegistry::Instance().GetCounter("cod_failpoint_trips_total");
  trips->Increment();
  return true;
}

uint64_t Failpoints::TriggerCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggered;
}

}  // namespace cod
