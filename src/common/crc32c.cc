#include "common/crc32c.h"

#include <array>

namespace cod {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

struct Tables {
  // tables[k][b]: CRC of byte b followed by k zero bytes; slicing-by-8
  // folds 8 input bytes per iteration through these.
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (size_t k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFF];
      }
    }
  }
};

const Tables& CrcTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tab = CrcTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (n >= 8) {
    // Little-endian load of the next 8 bytes, folded in one step. The
    // byte-wise assembly keeps this alignment- and endianness-safe (the
    // repo asserts little-endian anyway, but cheap is cheap).
    const uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24);
    c = tab.t[7][lo & 0xFF] ^ tab.t[6][(lo >> 8) & 0xFF] ^
        tab.t[5][(lo >> 16) & 0xFF] ^ tab.t[4][lo >> 24] ^
        tab.t[3][p[4]] ^ tab.t[2][p[5]] ^ tab.t[1][p[6]] ^ tab.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ tab.t[0][(c ^ *p++) & 0xFF];
  }
  return ~c;
}

}  // namespace cod
