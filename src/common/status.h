// Status and Result<T>: the error model of codlib.
//
// Modeled on the RocksDB/Arrow convention: functions that can fail in ways a
// caller should handle return Status (or Result<T> when they also produce a
// value). Exceptions are not used anywhere in the library.

#ifndef COD_COMMON_STATUS_H_
#define COD_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace cod {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kTimeout,
  kCancelled,
};

// A lightweight success-or-error value. Copyable and movable.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string, for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// A value-or-error wrapper. Access to the value of a failed Result aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` interchangeably (matching absl::StatusOr).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : data_(std::move(status)) {
    COD_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    COD_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    COD_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    COD_CHECK(ok());
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates a non-ok Status from an expression; usable in functions that
// themselves return Status or Result<T>.
#define COD_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::cod::Status _status = (expr);          \
    if (!_status.ok()) return _status;       \
  } while (false)

}  // namespace cod

#endif  // COD_COMMON_STATUS_H_
