// Bottom-up construction of CoverageSketchIndex during a HIMOR build.
//
// HimorIndex::BuildFromItems already walks the dendrogram in ascending
// community-id order (parents after children, Theorem 6), with three facts
// the sketch gets for free at each non-leaf community c:
//
//  * the sorted bucket run `updated` — the nodes whose DEEPEST tag is c,
//    i.e. exactly the nodes c adds to its children's covered sets (every
//    source appears in its leaf-parent's bucket, so leaves need no
//    signatures of their own);
//  * the fully merged run `merged` — every covered node of c with its exact
//    cumulative count, descending — from which the top `rank_depth`
//    thresholds and the exact support are read off;
//  * for materialized c, acc[v] per member v — v's exact count at c; the
//    ascending sweep overwrites so each node ends at its TOPMOST
//    materialized ancestor (the monotone upper bound pruning needs).
//
// The builder is pure bookkeeping over those hooks: signatures merge with
// the associative/commutative bottom-k union (counter-seeded SketchNodeRank,
// so serial, task-parallel, and delta builds agree bit-for-bit), and
// Finish() packs the CSR index. Thresholds/signatures are emitted only for
// MATERIALIZED communities — the only ones HIMOR ranks and the only ones a
// chain level can name.

#ifndef COD_HIERARCHY_SKETCH_BUILDER_H_
#define COD_HIERARCHY_SKETCH_BUILDER_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "hierarchy/dendrogram.h"
#include "influence/coverage_sketch.h"

namespace cod {

class CoverageSketchBuilder {
 public:
  // `num_vertices` counts dendrogram vertices (leaves + internal),
  // `num_nodes` graph nodes. (schedule_seed, theta) must be the schedule
  // the surrounding HIMOR build samples with; rank_depth its max_rank.
  CoverageSketchBuilder(size_t num_vertices, size_t num_nodes,
                        uint64_t schedule_seed, uint32_t theta,
                        uint32_t sketch_bits, uint32_t rank_depth);

  // Called once per non-leaf community, children-first. `bucket` is the
  // community's own sorted bucket run (count, node): the nodes first
  // covered at c.
  void MergeUp(CommunityId c, std::span<const CommunityId> children,
               std::span<const std::pair<uint32_t, NodeId>> bucket);

  // Called for materialized communities only, after ranks are assigned.
  // `merged` is the full descending coverage run of c.
  void RecordCommunity(CommunityId c,
                       std::span<const std::pair<uint32_t, NodeId>> merged);

  // v's exact cumulative count at the materialized community currently
  // being processed; last write wins (= topmost materialized ancestor).
  void SetTopCount(NodeId v, uint32_t count) { top_count_[v] = count; }

  // Packs the CSR index. The builder is spent afterwards.
  CoverageSketchIndex Finish();

 private:
  uint64_t schedule_seed_;
  uint32_t theta_;
  uint32_t sketch_bits_;
  uint32_t rank_depth_;
  size_t cap_;

  std::vector<std::vector<uint64_t>> sigs_;      // transient, per community
  std::vector<std::vector<uint32_t>> thr_;       // recorded communities only
  std::vector<uint8_t> recorded_;
  std::vector<uint32_t> support_;
  std::vector<uint32_t> top_count_;

  std::vector<uint64_t> cur_;  // merge scratch
  std::vector<uint64_t> tmp_;

  double merge_seconds_ = 0.0;
};

}  // namespace cod

#endif  // COD_HIERARCHY_SKETCH_BUILDER_H_
