// Divisive hierarchical clustering by iterated edge-betweenness removal
// (Girvan & Newman 2004), the classic top-down alternative the paper cites
// as [15]. Provided as an ablation hierarchy for small graphs; its cost is
// O(|E|^2 |V|), so it is only practical for a few hundred nodes.
//
// The community hierarchy is recovered by replaying the edge removals in
// reverse as union-find merges, which yields the same split tree.

#ifndef COD_HIERARCHY_GIRVAN_NEWMAN_H_
#define COD_HIERARCHY_GIRVAN_NEWMAN_H_

#include <vector>

#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

// Edge betweenness centrality of every edge (Brandes' algorithm, unweighted
// shortest paths). Exposed separately for testing.
std::vector<double> EdgeBetweenness(const Graph& g);

Dendrogram GirvanNewmanCluster(const Graph& g);

}  // namespace cod

#endif  // COD_HIERARCHY_GIRVAN_NEWMAN_H_
