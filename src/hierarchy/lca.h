// O(1) lowest-common-ancestor queries over a Dendrogram.
//
// Classic Euler-tour + sparse-table RMQ (Bender & Farach-Colton). The paper's
// complexity results (Theorems 5 and 6) assume constant-time lca, which this
// provides after O(V log V) preprocessing on the 2n-1 dendrogram vertices.

#ifndef COD_HIERARCHY_LCA_H_
#define COD_HIERARCHY_LCA_H_

#include <cstdint>
#include <vector>

#include "hierarchy/dendrogram.h"

namespace cod {

class LcaIndex {
 public:
  // Builds the index; `dendrogram` must outlive the index.
  explicit LcaIndex(const Dendrogram& dendrogram);

  // Lowest common ancestor of two dendrogram vertices (leaves or internal).
  CommunityId Lca(CommunityId a, CommunityId b) const;

  // lca of two graph nodes: the smallest community containing both.
  CommunityId LcaOfNodes(NodeId u, NodeId v) const {
    return Lca(dendrogram_->LeafOf(u), dendrogram_->LeafOf(v));
  }

  // The smallest community containing both node `u` and community `c`
  // (used by HIMOR's hierarchical-first search).
  CommunityId LcaNodeCommunity(NodeId u, CommunityId c) const {
    return Lca(dendrogram_->LeafOf(u), c);
  }

 private:
  uint32_t ArgMin(uint32_t lo, uint32_t hi) const;  // [lo, hi], by depth

  const Dendrogram* dendrogram_;
  std::vector<CommunityId> euler_;       // vertex at each tour position
  std::vector<uint32_t> euler_depth_;    // depth at each tour position
  std::vector<uint32_t> first_;          // first tour position of each vertex
  std::vector<std::vector<uint32_t>> table_;  // sparse table of argmin indices
  std::vector<uint32_t> log2_;           // floor(log2(i)) lookup
};

}  // namespace cod

#endif  // COD_HIERARCHY_LCA_H_
