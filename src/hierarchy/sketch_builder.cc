#include "hierarchy/sketch_builder.h"

#include <algorithm>
#include <chrono>

namespace cod {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

CoverageSketchBuilder::CoverageSketchBuilder(size_t num_vertices,
                                             size_t num_nodes,
                                             uint64_t schedule_seed,
                                             uint32_t theta,
                                             uint32_t sketch_bits,
                                             uint32_t rank_depth)
    : schedule_seed_(schedule_seed),
      theta_(theta),
      sketch_bits_(sketch_bits),
      rank_depth_(rank_depth),
      cap_(size_t{1} << sketch_bits),
      sigs_(num_vertices),
      thr_(num_vertices),
      recorded_(num_vertices, 0),
      support_(num_vertices, 0),
      top_count_(num_nodes, 0) {}

void CoverageSketchBuilder::MergeUp(
    CommunityId c, std::span<const CommunityId> children,
    std::span<const std::pair<uint32_t, NodeId>> bucket) {
  const auto start = std::chrono::steady_clock::now();
  // Own-bucket ranks: sort-dedup-truncate beats repeated insertion for the
  // large buckets near the root.
  cur_.clear();
  for (const auto& [count, node] : bucket) {
    cur_.push_back(SketchNodeRank(schedule_seed_, node));
  }
  std::sort(cur_.begin(), cur_.end());
  cur_.erase(std::unique(cur_.begin(), cur_.end()), cur_.end());
  if (cur_.size() > cap_) cur_.resize(cap_);
  // Fold in the children (leaf children have empty signatures; their nodes
  // arrive through ancestor buckets instead).
  for (const CommunityId child : children) {
    const auto& sig = sigs_[child];
    if (sig.empty()) continue;
    BottomKMerge(cur_, sig, cap_, &tmp_);
    cur_.swap(tmp_);
  }
  sigs_[c] = cur_;
  merge_seconds_ += SecondsSince(start);
}

void CoverageSketchBuilder::RecordCommunity(
    CommunityId c, std::span<const std::pair<uint32_t, NodeId>> merged) {
  recorded_[c] = 1;
  support_[c] = static_cast<uint32_t>(merged.size());
  auto& thr = thr_[c];
  thr.clear();
  const size_t len = std::min<size_t>(rank_depth_, merged.size());
  thr.reserve(len);
  for (size_t i = 0; i < len; ++i) thr.push_back(merged[i].first);
}

CoverageSketchIndex CoverageSketchBuilder::Finish() {
  const auto start = std::chrono::steady_clock::now();
  CoverageSketchIndex index;
  index.schedule_seed_ = schedule_seed_;
  index.theta_ = theta_;
  index.sketch_bits_ = sketch_bits_;
  index.rank_depth_ = rank_depth_;

  const size_t n = sigs_.size();
  index.thr_offsets_.reserve(n + 1);
  index.sig_offsets_.reserve(n + 1);
  index.thr_offsets_.push_back(0);
  index.sig_offsets_.push_back(0);
  for (CommunityId c = 0; c < n; ++c) {
    if (recorded_[c]) {
      index.thr_values_.insert(index.thr_values_.end(), thr_[c].begin(),
                               thr_[c].end());
      index.sig_values_.insert(index.sig_values_.end(), sigs_[c].begin(),
                               sigs_[c].end());
    } else {
      // Non-materialized communities keep empty rows AND zero support so
      // the index never claims knowledge it can't back.
      support_[c] = 0;
    }
    index.thr_offsets_.push_back(index.thr_values_.size());
    index.sig_offsets_.push_back(index.sig_values_.size());
  }
  index.support_ = std::move(support_);
  index.top_count_ = std::move(top_count_);
  index.build_merge_seconds_ = merge_seconds_;
  index.build_finalize_seconds_ = SecondsSince(start);
  return index;
}

}  // namespace cod
