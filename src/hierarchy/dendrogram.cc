#include "hierarchy/dendrogram.h"

#include <algorithm>

namespace cod {

std::vector<CommunityId> Dendrogram::PathToRoot(NodeId q) const {
  std::vector<CommunityId> path;
  CommunityId c = Parent(LeafOf(q));
  while (c != kInvalidCommunity) {
    path.push_back(c);
    c = Parent(c);
  }
  return path;
}

DendrogramBuilder::DendrogramBuilder(size_t num_leaves)
    : num_leaves_(num_leaves),
      parent_(num_leaves, kInvalidCommunity),
      children_(num_leaves) {
  COD_CHECK(num_leaves >= 1);
}

CommunityId DendrogramBuilder::Merge(std::span<const CommunityId> children) {
  COD_CHECK(children.size() >= 2);
  const CommunityId id = static_cast<CommunityId>(parent_.size());
  parent_.push_back(kInvalidCommunity);
  children_.emplace_back(children.begin(), children.end());
  for (CommunityId child : children) {
    COD_CHECK(child < id);
    COD_CHECK(parent_[child] == kInvalidCommunity);  // child must be a root
    parent_[child] = id;
  }
  return id;
}

Dendrogram DendrogramBuilder::Build() && {
  const size_t num_vertices = parent_.size();
  Dendrogram d;
  d.num_leaves_ = num_leaves_;
  d.parent_ = std::move(parent_);

  // Locate the unique root.
  d.root_ = kInvalidCommunity;
  for (CommunityId c = 0; c < num_vertices; ++c) {
    if (d.parent_[c] == kInvalidCommunity) {
      COD_CHECK(d.root_ == kInvalidCommunity);  // exactly one root
      d.root_ = c;
    }
  }
  COD_CHECK(d.root_ != kInvalidCommunity);

  // CSR children.
  d.child_offsets_.assign(num_vertices + 1, 0);
  for (CommunityId c = 0; c < num_vertices; ++c) {
    d.child_offsets_[c + 1] = d.child_offsets_[c] + children_[c].size();
  }
  d.children_.resize(d.child_offsets_[num_vertices]);
  for (CommunityId c = 0; c < num_vertices; ++c) {
    std::copy(children_[c].begin(), children_[c].end(),
              d.children_.begin() + d.child_offsets_[c]);
  }

  // Iterative DFS from the root: assign depths and contiguous leaf ranges.
  d.depth_.assign(num_vertices, 0);
  d.leaf_begin_.assign(num_vertices, 0);
  d.leaf_end_.assign(num_vertices, 0);
  d.leaf_order_.reserve(num_leaves_);
  d.leaf_position_.assign(num_leaves_, 0);

  // Stack entries: (vertex, entering). On exit, the leaf range closes.
  std::vector<std::pair<CommunityId, bool>> stack;
  stack.emplace_back(d.root_, true);
  d.depth_[d.root_] = 1;
  while (!stack.empty()) {
    auto [c, entering] = stack.back();
    stack.pop_back();
    if (entering) {
      d.leaf_begin_[c] = static_cast<uint32_t>(d.leaf_order_.size());
      if (c < num_leaves_) {
        d.leaf_position_[c] = static_cast<uint32_t>(d.leaf_order_.size());
        d.leaf_order_.push_back(static_cast<NodeId>(c));
        d.leaf_end_[c] = static_cast<uint32_t>(d.leaf_order_.size());
        continue;
      }
      stack.emplace_back(c, false);
      const auto kids = d.Children(c);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        d.depth_[*it] = d.depth_[c] + 1;
        stack.emplace_back(*it, true);
      }
    } else {
      d.leaf_end_[c] = static_cast<uint32_t>(d.leaf_order_.size());
    }
  }
  COD_CHECK_EQ(d.leaf_order_.size(), num_leaves_);
  return d;
}

}  // namespace cod
