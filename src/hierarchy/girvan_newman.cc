#include "hierarchy/girvan_newman.h"

#include <algorithm>
#include <queue>

namespace cod {
namespace {

// Brandes accumulation over a mask of removed edges.
std::vector<double> EdgeBetweennessMasked(const Graph& g,
                                          const std::vector<char>& removed) {
  const size_t n = g.NumNodes();
  std::vector<double> score(g.NumEdges(), 0.0);
  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    std::queue<NodeId> queue;
    dist[s] = 0;
    sigma[s] = 1.0;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      order.push_back(v);
      for (const AdjEntry& a : g.Neighbors(v)) {
        if (removed[a.edge]) continue;
        if (dist[a.to] < 0) {
          dist[a.to] = dist[v] + 1;
          queue.push(a.to);
        }
        if (dist[a.to] == dist[v] + 1) sigma[a.to] += sigma[v];
      }
    }
    // Dependency accumulation in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (const AdjEntry& a : g.Neighbors(w)) {
        if (removed[a.edge]) continue;
        const NodeId v = a.to;
        if (dist[v] == dist[w] - 1) {
          const double c = sigma[v] / sigma[w] * (1.0 + delta[w]);
          delta[v] += c;
          score[a.edge] += c;
        }
      }
    }
  }
  // Each undirected edge was counted from both directions of each BFS pair.
  for (double& x : score) x /= 2.0;
  return score;
}

}  // namespace

std::vector<double> EdgeBetweenness(const Graph& g) {
  return EdgeBetweennessMasked(g, std::vector<char>(g.NumEdges(), 0));
}

Dendrogram GirvanNewmanCluster(const Graph& g) {
  const size_t n = g.NumNodes();
  COD_CHECK(n >= 1);
  const size_t m = g.NumEdges();

  // Repeatedly remove the currently most central edge.
  std::vector<char> removed(m, 0);
  std::vector<EdgeId> removal_order;
  removal_order.reserve(m);
  for (size_t step = 0; step < m; ++step) {
    const std::vector<double> score = EdgeBetweennessMasked(g, removed);
    EdgeId best = kInvalidEdge;
    double best_score = -1.0;
    for (EdgeId e = 0; e < m; ++e) {
      if (!removed[e] && score[e] > best_score) {
        best_score = score[e];
        best = e;
      }
    }
    COD_CHECK(best != kInvalidEdge);
    removed[best] = 1;
    removal_order.push_back(best);
  }

  // Replay removals in reverse as merges: the last removal that separated two
  // node sets corresponds to the shallowest merge joining them.
  DendrogramBuilder builder(n);
  // Union-find over current subtree roots.
  std::vector<CommunityId> uf_parent(n);
  std::vector<CommunityId> root_vertex(n);
  for (NodeId v = 0; v < n; ++v) {
    uf_parent[v] = v;
    root_vertex[v] = static_cast<CommunityId>(v);
  }
  auto find_set = [&](NodeId v) {
    while (uf_parent[v] != v) {
      uf_parent[v] = uf_parent[uf_parent[v]];
      v = uf_parent[v];
    }
    return v;
  };
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    const auto [u, v] = g.Endpoints(*it);
    const NodeId ru = find_set(u);
    const NodeId rv = find_set(v);
    if (ru == rv) continue;
    const CommunityId merged = builder.Merge(root_vertex[ru], root_vertex[rv]);
    uf_parent[rv] = ru;
    root_vertex[ru] = merged;
  }
  // Join disconnected components (if any) under one root.
  std::vector<CommunityId> roots;
  for (NodeId v = 0; v < n; ++v) {
    if (find_set(v) == v) roots.push_back(root_vertex[v]);
  }
  if (roots.size() > 1) builder.Merge(roots);
  return std::move(builder).Build();
}

}  // namespace cod
