#include "hierarchy/dendrogram_io.h"

#include <vector>

#include "common/binary_io.h"

namespace cod {
namespace {

constexpr uint32_t kMagic = 0x434F4444;  // "CODD"
// v2: CRC32C envelope (WriteChecksummedFile); v1 (no checksum) is no longer
// readable — the formats are repo-internal and regenerable.
constexpr uint32_t kVersion = 2;

}  // namespace

void SerializeDendrogram(const Dendrogram& dendrogram,
                         BinaryBufferWriter& out) {
  out.WritePod<uint64_t>(dendrogram.NumLeaves());
  out.WritePod<uint64_t>(dendrogram.NumVertices());
  // Internal vertices in id order; ids of children are stable because the
  // builder assigns internal ids sequentially after the leaves.
  for (CommunityId c = static_cast<CommunityId>(dendrogram.NumLeaves());
       c < dendrogram.NumVertices(); ++c) {
    const auto kids = dendrogram.Children(c);
    std::vector<CommunityId> children(kids.begin(), kids.end());
    out.WriteVector(children);
  }
}

Result<Dendrogram> DeserializeDendrogram(BinarySpanReader& in) {
  uint64_t num_leaves = 0;
  uint64_t num_vertices = 0;
  // Header sanity: every internal vertex has >= 2 children, so
  // num_vertices <= 2 * num_leaves - 1; the leaf cap matches the edge-list
  // loader's 1e8 node limit (corrupt headers must not drive allocations).
  constexpr uint64_t kMaxLeaves = 100'000'000;
  if (!in.ReadPod(&num_leaves) || !in.ReadPod(&num_vertices)) {
    return in.status();
  }
  if (num_leaves == 0 || num_leaves > kMaxLeaves ||
      num_vertices < num_leaves || num_vertices > 2 * num_leaves) {
    in.Fail("corrupt dendrogram header");
    return in.status();
  }
  DendrogramBuilder builder(num_leaves);
  std::vector<char> has_parent(num_vertices, 0);
  for (uint64_t c = num_leaves; c < num_vertices; ++c) {
    std::vector<CommunityId> children;
    if (!in.ReadVector(&children, num_vertices)) return in.status();
    if (children.size() < 2) {
      in.Fail("corrupt children list");
      return in.status();
    }
    for (CommunityId child : children) {
      if (child >= c || has_parent[child]) {
        in.Fail("invalid child reference");
        return in.status();
      }
      has_parent[child] = 1;
    }
    const CommunityId id = builder.Merge(children);
    COD_CHECK_EQ(static_cast<uint64_t>(id), c);
  }
  // Exactly one root must remain or Build() would abort on corrupt input.
  size_t roots = 0;
  for (uint64_t c = 0; c < num_vertices; ++c) roots += !has_parent[c];
  if (roots != 1) {
    in.Fail("hierarchy is not a single tree");
    return in.status();
  }
  return std::move(builder).Build();
}

Status SaveDendrogram(const Dendrogram& dendrogram, const std::string& path) {
  BinaryBufferWriter payload;
  SerializeDendrogram(dendrogram, payload);
  return WriteChecksummedFile(path, kMagic, kVersion, payload.bytes());
}

Result<Dendrogram> LoadDendrogram(const std::string& path) {
  Result<std::string> payload =
      ReadChecksummedFile(path, kMagic, kVersion, "dendrogram");
  if (!payload.ok()) return payload.status();
  BinarySpanReader reader(*payload, path);
  Result<Dendrogram> dendrogram = DeserializeDendrogram(reader);
  if (!dendrogram.ok()) return dendrogram.status();
  if (!reader.exhausted()) {
    return Status::InvalidArgument(path +
                                   ": trailing bytes after dendrogram");
  }
  return dendrogram;
}

}  // namespace cod
