#include "hierarchy/dendrogram_io.h"

#include <vector>

#include "common/binary_io.h"

namespace cod {
namespace {

constexpr uint32_t kMagic = 0x434F4444;  // "CODD"
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveDendrogram(const Dendrogram& dendrogram, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) return Status::IoError("cannot open " + path);
  writer.WritePod(kMagic);
  writer.WritePod(kVersion);
  writer.WritePod<uint64_t>(dendrogram.NumLeaves());
  writer.WritePod<uint64_t>(dendrogram.NumVertices());
  // Internal vertices in id order; ids of children are stable because the
  // builder assigns internal ids sequentially after the leaves.
  for (CommunityId c = static_cast<CommunityId>(dendrogram.NumLeaves());
       c < dendrogram.NumVertices(); ++c) {
    const auto kids = dendrogram.Children(c);
    std::vector<CommunityId> children(kids.begin(), kids.end());
    writer.WriteVector(children);
  }
  return writer.Finish(path);
}

Result<Dendrogram> LoadDendrogram(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t num_leaves = 0;
  uint64_t num_vertices = 0;
  if (!reader.ReadPod(&magic) || magic != kMagic) {
    return Status::InvalidArgument(path + ": not a codlib dendrogram file");
  }
  if (!reader.ReadPod(&version) || version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported dendrogram version");
  }
  // Header sanity: every internal vertex has >= 2 children, so
  // num_vertices <= 2 * num_leaves - 1; the leaf cap matches the edge-list
  // loader's 1e8 node limit (corrupt headers must not drive allocations).
  constexpr uint64_t kMaxLeaves = 100'000'000;
  if (!reader.ReadPod(&num_leaves) || !reader.ReadPod(&num_vertices) ||
      num_leaves == 0 || num_leaves > kMaxLeaves ||
      num_vertices < num_leaves || num_vertices > 2 * num_leaves) {
    return Status::InvalidArgument(path + ": corrupt dendrogram header");
  }
  DendrogramBuilder builder(num_leaves);
  std::vector<char> has_parent(num_vertices, 0);
  for (uint64_t c = num_leaves; c < num_vertices; ++c) {
    std::vector<CommunityId> children;
    if (!reader.ReadVector(&children, num_vertices) || children.size() < 2) {
      return Status::InvalidArgument(path + ": corrupt children list");
    }
    for (CommunityId child : children) {
      if (child >= c || has_parent[child]) {
        return Status::InvalidArgument(path + ": invalid child reference");
      }
      has_parent[child] = 1;
    }
    const CommunityId id = builder.Merge(children);
    COD_CHECK_EQ(static_cast<uint64_t>(id), c);
  }
  // Exactly one root must remain or Build() would abort on corrupt input.
  size_t roots = 0;
  for (uint64_t c = 0; c < num_vertices; ++c) roots += !has_parent[c];
  if (roots != 1) {
    return Status::InvalidArgument(path + ": hierarchy is not a single tree");
  }
  return std::move(builder).Build();
}

}  // namespace cod
