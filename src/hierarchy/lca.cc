#include "hierarchy/lca.h"

#include <utility>

namespace cod {

LcaIndex::LcaIndex(const Dendrogram& dendrogram) : dendrogram_(&dendrogram) {
  const size_t num_vertices = dendrogram.NumVertices();
  first_.assign(num_vertices, 0);
  euler_.reserve(2 * num_vertices);
  euler_depth_.reserve(2 * num_vertices);

  // Euler tour: record a vertex on entry and after each child returns.
  std::vector<std::pair<CommunityId, size_t>> stack;  // (vertex, next child)
  stack.emplace_back(dendrogram.Root(), 0);
  first_[dendrogram.Root()] = 0;
  euler_.push_back(dendrogram.Root());
  euler_depth_.push_back(dendrogram.Depth(dendrogram.Root()));
  while (!stack.empty()) {
    auto& [c, next] = stack.back();
    const auto kids = dendrogram.Children(c);
    if (next < kids.size()) {
      const CommunityId child = kids[next++];
      first_[child] = static_cast<uint32_t>(euler_.size());
      euler_.push_back(child);
      euler_depth_.push_back(dendrogram.Depth(child));
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        euler_.push_back(stack.back().first);
        euler_depth_.push_back(dendrogram.Depth(stack.back().first));
      }
    }
  }

  // Sparse table over euler positions, storing the position of the minimum
  // depth in each power-of-two window.
  const size_t m = euler_.size();
  log2_.assign(m + 1, 0);
  for (size_t i = 2; i <= m; ++i) log2_[i] = log2_[i / 2] + 1;
  const uint32_t levels = log2_[m] + 1;
  table_.resize(levels);
  table_[0].resize(m);
  for (uint32_t i = 0; i < m; ++i) table_[0][i] = i;
  for (uint32_t k = 1; k < levels; ++k) {
    const size_t span = size_t{1} << k;
    table_[k].resize(m - span + 1);
    for (size_t i = 0; i + span <= m; ++i) {
      const uint32_t left = table_[k - 1][i];
      const uint32_t right = table_[k - 1][i + span / 2];
      table_[k][i] = euler_depth_[left] <= euler_depth_[right] ? left : right;
    }
  }
}

uint32_t LcaIndex::ArgMin(uint32_t lo, uint32_t hi) const {
  const uint32_t k = log2_[hi - lo + 1];
  const uint32_t left = table_[k][lo];
  const uint32_t right = table_[k][hi + 1 - (uint32_t{1} << k)];
  return euler_depth_[left] <= euler_depth_[right] ? left : right;
}

CommunityId LcaIndex::Lca(CommunityId a, CommunityId b) const {
  uint32_t pa = first_[a];
  uint32_t pb = first_[b];
  if (pa > pb) std::swap(pa, pb);
  return euler_[ArgMin(pa, pb)];
}

}  // namespace cod
