// Agglomerative hierarchical graph clustering via the nearest-neighbor-chain
// algorithm with the unweighted-average linkage function — the configuration
// the paper uses for all its hierarchies (Sec. V-A, citing [45], [54], [55]).
//
// Clusters start as singletons; the similarity between clusters A and B is
//     sim(A, B) = W(A, B) / (|A| * |B|),
// where W(A, B) is the total weight of graph edges between A and B (so
// non-adjacent clusters have similarity 0). Average linkage is reducible,
// which makes the NN-chain algorithm produce the same merge tree as greedy
// best-merge agglomeration.
//
// Implementation notes:
//  * Cluster adjacency lives in hash maps; a merge folds the smaller map into
//    the larger and keeps the larger cluster's id, so total map traffic is
//    O(|E| log |V|) expected.
//  * Disconnected inputs are handled: when a chain tip has no neighbor left,
//    its component is finished; finished component roots are merged into the
//    root in a final pass (similarity 0), keeping the output a single tree.

#ifndef COD_HIERARCHY_AGGLOMERATIVE_H_
#define COD_HIERARCHY_AGGLOMERATIVE_H_

#include "common/deadline.h"
#include "common/status.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

// Linkage functions. The paper uses unweighted-average linkage; the others
// are provided because the choice is explicitly orthogonal to COD ("our
// methods can also be combined with ... other linkage functions [16]") and
// they matter for the hierarchy-shape ablations:
//  * kUnweightedAverage (UPGMA): sim(A,B) = W(A,B) / (|A| * |B|).
//  * kSingle: sim(A,B) = max edge weight between A and B.
//  * kWeightedAverage (WPGMA): on merge of A,B, the similarity to any C is
//    the plain mean (sim(A,C) + sim(B,C)) / 2, regardless of sizes.
// All three are reducible, so the nearest-neighbor chain stays exact.
enum class Linkage {
  kUnweightedAverage,
  kSingle,
  kWeightedAverage,
};

struct AgglomerativeOptions {
  Linkage linkage = Linkage::kUnweightedAverage;
  // Ties in similarity break toward the smaller current cluster id; this
  // keeps runs deterministic.
};

// Clusters `g` (using its edge weights) into a binary-until-the-last-pass
// dendrogram. Works for any graph with at least one node.
Dendrogram AgglomerativeCluster(const Graph& g,
                                const AgglomerativeOptions& options = {});

// Budget-aware form: the NN-chain loop polls `budget` every few hundred
// steps and unwinds with kTimeout / kCancelled instead of finishing the
// clustering pass — so a deadline-carrying CODR global recluster or LORE
// local recluster no longer overshoots by a whole agglomerative run. Aborts
// return no dendrogram (a partial merge tree is not a valid hierarchy) and
// count one cod_cluster_budget_aborts_total event in the metrics registry.
// An unlimited budget takes the exact same code path as the plain form.
Result<Dendrogram> AgglomerativeCluster(const Graph& g,
                                        const AgglomerativeOptions& options,
                                        const Budget& budget);

}  // namespace cod

#endif  // COD_HIERARCHY_AGGLOMERATIVE_H_
