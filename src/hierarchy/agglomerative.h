// Agglomerative hierarchical graph clustering via the nearest-neighbor-chain
// algorithm with the unweighted-average linkage function — the configuration
// the paper uses for all its hierarchies (Sec. V-A, citing [45], [54], [55]).
//
// Clusters start as singletons; the similarity between clusters A and B is
//     sim(A, B) = W(A, B) / (|A| * |B|),
// where W(A, B) is the total weight of graph edges between A and B (so
// non-adjacent clusters have similarity 0). Average linkage is reducible,
// which makes the NN-chain algorithm produce the same merge tree as greedy
// best-merge agglomeration.
//
// Implementation notes:
//  * Cluster adjacency lives in hash maps; a merge folds the smaller map into
//    the larger and keeps the larger cluster's id, so total map traffic is
//    O(|E| log |V|) expected.
//  * Execution is canonicalized per connected component: components run to
//    completion one at a time, in order of their smallest node id, and their
//    roots are merged into the tree root in that same order (similarity 0).
//    NN chains never cross components and each component's chain restarts at
//    its smallest active cluster, so on a connected graph this is *exactly*
//    the classic global NN-chain run; on disconnected graphs the merge SETS
//    are identical and only the internal vertex numbering differs. The
//    canonical order is what makes per-component replay (below) possible.

#ifndef COD_HIERARCHY_AGGLOMERATIVE_H_
#define COD_HIERARCHY_AGGLOMERATIVE_H_

#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

// Linkage functions. The paper uses unweighted-average linkage; the others
// are provided because the choice is explicitly orthogonal to COD ("our
// methods can also be combined with ... other linkage functions [16]") and
// they matter for the hierarchy-shape ablations:
//  * kUnweightedAverage (UPGMA): sim(A,B) = W(A,B) / (|A| * |B|).
//  * kSingle: sim(A,B) = max edge weight between A and B.
//  * kWeightedAverage (WPGMA): on merge of A,B, the similarity to any C is
//    the plain mean (sim(A,C) + sim(B,C)) / 2, regardless of sizes.
// All three are reducible, so the nearest-neighbor chain stays exact.
enum class Linkage {
  kUnweightedAverage,
  kSingle,
  kWeightedAverage,
};

struct AgglomerativeOptions {
  Linkage linkage = Linkage::kUnweightedAverage;
  // Ties in similarity break toward the smaller current cluster id; this
  // keeps runs deterministic.
};

// Replayable record of one clustering run, keyed by connected component
// (DESIGN.md Sec. 15). The NN-chain run of a component is a pure function of
// that component's internal edges and weights, so a component none of whose
// members touch a changed edge replays its recorded merge list verbatim —
// no adjacency maps, no NN scans. Merge operands are refs: a ref < num_nodes
// is a leaf (node id == leaf vertex id); a ref >= num_nodes denotes the
// (ref - num_nodes)-th earlier merge of the SAME component.
struct ClusterReplay {
  struct MergeRec {
    uint32_t a = 0;
    uint32_t b = 0;
  };
  struct ComponentRec {
    NodeId anchor = kInvalidNode;  // smallest node id in the component
    uint32_t num_nodes = 0;
    std::vector<MergeRec> merges;  // in execution order
  };
  size_t num_nodes = 0;
  Linkage linkage = Linkage::kUnweightedAverage;
  std::vector<ComponentRec> components;  // in anchor (= label) order
  bool valid = false;
};

// Clusters `g` (using its edge weights) into a binary-until-the-last-pass
// dendrogram. Works for any graph with at least one node.
Dendrogram AgglomerativeCluster(const Graph& g,
                                const AgglomerativeOptions& options = {});

// Budget-aware form: the NN-chain loop polls `budget` every few hundred
// steps and unwinds with kTimeout / kCancelled instead of finishing the
// clustering pass — so a deadline-carrying CODR global recluster or LORE
// local recluster no longer overshoots by a whole agglomerative run. Aborts
// return no dendrogram (a partial merge tree is not a valid hierarchy) and
// count one cod_cluster_budget_aborts_total event in the metrics registry.
// An unlimited budget takes the exact same code path as the plain form.
Result<Dendrogram> AgglomerativeCluster(const Graph& g,
                                        const AgglomerativeOptions& options,
                                        const Budget& budget);

// Incremental form. With `prev` (a valid record from the previous epoch,
// same node count and linkage) and `dirty` (vertices incident to any edge
// added, removed, or reweighted since), components with no dirty member are
// replayed from the record; only dirty components pay the NN-chain run. The
// result is bit-identical to the plain form on the same graph. `next`
// (nullable; != prev) receives the record of THIS run for the following
// epoch, and is valid only when the build returns Ok. Pass nulls for a cold
// run that still produces a record.
Result<Dendrogram> AgglomerativeClusterDelta(const Graph& g,
                                             const AgglomerativeOptions& options,
                                             const Budget& budget,
                                             const std::vector<char>* dirty,
                                             const ClusterReplay* prev,
                                             ClusterReplay* next);

}  // namespace cod

#endif  // COD_HIERARCHY_AGGLOMERATIVE_H_
