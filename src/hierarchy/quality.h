// Quality measures for hierarchies and flat partitions.
//
//  * Dasgupta cost — the standard objective for hierarchical clustering
//    (Dasgupta, STOC'16): cost(T) = sum over edges w(u,v) * |lca_T(u,v)|.
//    Lower is better; cutting dense areas deep in the tree is rewarded.
//    The paper's hierarchy choice (average linkage) carries a Dasgupta
//    approximation guarantee (its citation [45]), so this is the natural
//    instrument for the linkage ablation.
//  * Newman modularity — for flat partitions obtained by cutting a
//    dendrogram (CutToClusters) or any labeling.

#ifndef COD_HIERARCHY_QUALITY_H_
#define COD_HIERARCHY_QUALITY_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "hierarchy/dendrogram.h"
#include "hierarchy/lca.h"

namespace cod {

// Dasgupta cost of `dendrogram` over `g` (uses edge weights).
double DasguptaCost(const Graph& g, const Dendrogram& dendrogram,
                    const LcaIndex& lca);

// Cuts the dendrogram into (at most) `target_clusters` clusters by
// repeatedly expanding the largest current cluster top-down. Returns a
// per-node cluster label in [0, count); count <= target_clusters.
std::vector<uint32_t> CutToClusters(const Dendrogram& dendrogram,
                                    size_t target_clusters);

// Newman modularity of a labeling: sum over clusters of
// (intra-edge fraction) - (degree fraction)^2. In [-1/2, 1).
double Modularity(const Graph& g, std::span<const uint32_t> labels);

}  // namespace cod

#endif  // COD_HIERARCHY_QUALITY_H_
