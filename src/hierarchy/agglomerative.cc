#include "hierarchy/agglomerative.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace cod {
namespace {

// Mutable clustering state: active clusters with hash-map adjacency.
//
// adj[c][d] holds the linkage *state* for the pair (c, d), kept symmetric:
//  * kUnweightedAverage: total inter-cluster edge weight (similarity is
//    state / (|c| * |d|));
//  * kSingle / kWeightedAverage: the similarity itself.
struct ClusterState {
  Linkage linkage;
  std::vector<std::unordered_map<CommunityId, double>> adj;
  std::vector<uint32_t> size;       // leaf count of each cluster
  std::vector<CommunityId> vertex;  // dendrogram vertex the cluster maps to
  std::vector<char> active;

  double Similarity(CommunityId a, CommunityId b, double state) const {
    if (linkage == Linkage::kUnweightedAverage) {
      return state / (static_cast<double>(size[a]) * size[b]);
    }
    return state;
  }

  // Nearest active neighbor of `c` by similarity; ties break toward the
  // smaller id. Returns kInvalidCommunity if `c` has no neighbors.
  CommunityId NearestNeighbor(CommunityId c) const {
    CommunityId best = kInvalidCommunity;
    double best_sim = -1.0;
    for (const auto& [d, w] : adj[c]) {
      const double sim = Similarity(c, d, w);
      if (sim > best_sim || (sim == best_sim && d < best)) {
        best_sim = sim;
        best = d;
      }
    }
    return best;
  }

  // Merges `a` and `b`; returns the id that survives (the one with the
  // larger adjacency map). The dendrogram vertex is updated by the caller.
  CommunityId Merge(CommunityId a, CommunityId b) {
    if (adj[a].size() < adj[b].size()) std::swap(a, b);
    adj[a].erase(b);
    adj[b].erase(a);
    if (linkage == Linkage::kWeightedAverage) {
      // WPGMA: sim(ab, d) = (sim(a, d) + sim(b, d)) / 2 with absent pairs
      // counting as 0, so every surviving entry of `a` halves first.
      for (auto& [d, w] : adj[a]) {
        w /= 2.0;
        adj[d][a] = w;
      }
    }
    for (const auto& [d, w] : adj[b]) {
      double& slot = adj[a][d];  // zero-initialized when absent
      switch (linkage) {
        case Linkage::kUnweightedAverage:
          slot += w;
          break;
        case Linkage::kSingle:
          slot = std::max(slot, w);
          break;
        case Linkage::kWeightedAverage:
          slot += w / 2.0;
          break;
      }
      auto& dmap = adj[d];
      dmap.erase(b);
      dmap[a] = slot;
    }
    adj[b].clear();
    size[a] += size[b];
    active[b] = 0;
    return a;
  }
};

}  // namespace

Dendrogram AgglomerativeCluster(const Graph& g,
                                const AgglomerativeOptions& options) {
  // An unlimited budget never aborts, so the Result form cannot fail here.
  Result<Dendrogram> built = AgglomerativeCluster(g, options, Budget{});
  COD_CHECK(built.ok());
  return std::move(built).value();
}

Result<Dendrogram> AgglomerativeCluster(const Graph& g,
                                        const AgglomerativeOptions& options,
                                        const Budget& budget) {
  const size_t n = g.NumNodes();
  COD_CHECK(n >= 1);
  DendrogramBuilder builder(n);
  if (n == 1) {
    return std::move(builder).Build();
  }

  ClusterState state;
  state.linkage = options.linkage;
  state.adj.resize(n);
  state.size.assign(n, 1);
  state.vertex.resize(n);
  state.active.assign(n, 1);
  for (NodeId v = 0; v < n; ++v) {
    state.vertex[v] = static_cast<CommunityId>(v);
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (options.linkage == Linkage::kSingle) {
        double& slot = state.adj[v][a.to];
        slot = std::max(slot, g.Weight(a.edge));
      } else {
        state.adj[v][a.to] += g.Weight(a.edge);
      }
    }
  }

  // Roots of finished (neighborless) components, to be joined at the end.
  std::vector<CommunityId> component_roots;
  std::vector<CommunityId> chain;
  size_t scan_from = 0;  // next candidate to start a fresh chain
  size_t merges_done = 0;

  // Cooperative deadline poll. One NN-chain step costs roughly one
  // NearestNeighbor scan (tens of ns to a few us on hub clusters), so a
  // stride of 256 steps surfaces an expired budget within well under a
  // millisecond — against clustering passes that take seconds on large
  // graphs. At step == 0 the poll fires before any merge, so already-expired
  // budgets abort deterministically (see common/deadline.h).
  constexpr size_t kBudgetStride = 256;
  size_t steps = 0;

  while (merges_done + 1 < n) {
    if (steps++ % kBudgetStride == 0) {
      const StatusCode budget_code = budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) {
        static Counter* aborts = MetricsRegistry::Instance().GetCounter(
            "cod_cluster_budget_aborts_total");
        aborts->Increment();
        return budget_code == StatusCode::kCancelled
                   ? Status::Cancelled("agglomerative clustering cancelled")
                   : Status::Timeout(
                         "agglomerative clustering deadline exceeded");
      }
    }
    if (chain.empty()) {
      while (scan_from < n && !state.active[scan_from]) ++scan_from;
      if (scan_from == n) break;  // everything merged or finished
      chain.push_back(static_cast<CommunityId>(scan_from));
    }
    const CommunityId tip = chain.back();
    const CommunityId nn = state.NearestNeighbor(tip);
    if (nn == kInvalidCommunity) {
      // `tip` is the root of a finished component; anything earlier in the
      // chain belonged to the same (now exhausted) component.
      component_roots.push_back(state.vertex[tip]);
      state.active[tip] = 0;
      chain.pop_back();
      COD_CHECK(chain.empty());
      continue;
    }
    if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
      // Mutual nearest neighbors: merge.
      chain.pop_back();
      chain.pop_back();
      const CommunityId other = nn;
      const CommunityId merged_vertex =
          builder.Merge(state.vertex[tip], state.vertex[other]);
      const CommunityId kept = state.Merge(tip, other);
      state.vertex[kept] = merged_vertex;
      ++merges_done;
    } else {
      chain.push_back(nn);
    }
  }

  // Collect the surviving active cluster (if any) and join all component
  // roots under a single root.
  for (size_t c = scan_from; c < n; ++c) {
    if (state.active[c]) {
      component_roots.push_back(state.vertex[c]);
      state.active[c] = 0;
    }
  }
  COD_CHECK(!component_roots.empty());
  if (component_roots.size() > 1) {
    builder.Merge(component_roots);
  }
  return std::move(builder).Build();
}

}  // namespace cod
