#include "hierarchy/agglomerative.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "graph/connectivity.h"

namespace cod {
namespace {

// Mutable clustering state: active clusters with hash-map adjacency.
//
// adj[c][d] holds the linkage *state* for the pair (c, d), kept symmetric:
//  * kUnweightedAverage: total inter-cluster edge weight (similarity is
//    state / (|c| * |d|));
//  * kSingle / kWeightedAverage: the similarity itself.
struct ClusterState {
  Linkage linkage;
  std::vector<std::unordered_map<CommunityId, double>> adj;
  std::vector<uint32_t> size;       // leaf count of each cluster
  std::vector<CommunityId> vertex;  // dendrogram vertex the cluster maps to
  std::vector<char> active;
  // Smallest leaf node id inside each cluster: the STABLE tie-break key.
  // Cluster ids themselves depend on merge order (Merge keeps whichever id
  // has the larger adjacency map), so breaking similarity ties on ids lets
  // one early divergence reorder merges across the whole component — a
  // single extra edge could restructure ~40% of all ancestor chains, which
  // destroys cross-epoch reuse (ClusterReplay, HimorIndex::BuildDelta). The
  // min-leaf key is a pure function of the cluster's member set, so tied
  // merges resolve identically across epochs and damage stays local to the
  // perturbed region.
  std::vector<NodeId> min_leaf;

  double Similarity(CommunityId a, CommunityId b, double state) const {
    if (linkage == Linkage::kUnweightedAverage) {
      return state / (static_cast<double>(size[a]) * size[b]);
    }
    return state;
  }

  // Nearest active neighbor of `c` by similarity; ties break toward the
  // smaller min-leaf key (see `min_leaf`). Returns kInvalidCommunity if `c`
  // has no neighbors.
  CommunityId NearestNeighbor(CommunityId c) const {
    CommunityId best = kInvalidCommunity;
    double best_sim = -1.0;
    for (const auto& [d, w] : adj[c]) {
      const double sim = Similarity(c, d, w);
      if (sim > best_sim ||
          (sim == best_sim && min_leaf[d] < min_leaf[best])) {
        best_sim = sim;
        best = d;
      }
    }
    return best;
  }

  // Merges `a` and `b`; returns the id that survives (the one with the
  // larger adjacency map). The dendrogram vertex is updated by the caller.
  CommunityId Merge(CommunityId a, CommunityId b) {
    if (adj[a].size() < adj[b].size()) std::swap(a, b);
    adj[a].erase(b);
    adj[b].erase(a);
    if (linkage == Linkage::kWeightedAverage) {
      // WPGMA: sim(ab, d) = (sim(a, d) + sim(b, d)) / 2 with absent pairs
      // counting as 0, so every surviving entry of `a` halves first.
      for (auto& [d, w] : adj[a]) {
        w /= 2.0;
        adj[d][a] = w;
      }
    }
    for (const auto& [d, w] : adj[b]) {
      double& slot = adj[a][d];  // zero-initialized when absent
      switch (linkage) {
        case Linkage::kUnweightedAverage:
          slot += w;
          break;
        case Linkage::kSingle:
          slot = std::max(slot, w);
          break;
        case Linkage::kWeightedAverage:
          slot += w / 2.0;
          break;
      }
      auto& dmap = adj[d];
      dmap.erase(b);
      dmap[a] = slot;
    }
    adj[b].clear();
    size[a] += size[b];
    min_leaf[a] = std::min(min_leaf[a], min_leaf[b]);
    active[b] = 0;
    return a;
  }
};

Status ClusterAbort(StatusCode code) {
  static Counter* aborts = MetricsRegistry::Instance().GetCounter(
      "cod_cluster_budget_aborts_total");
  aborts->Increment();
  return code == StatusCode::kCancelled
             ? Status::Cancelled("agglomerative clustering cancelled")
             : Status::Timeout("agglomerative clustering deadline exceeded");
}

}  // namespace

Dendrogram AgglomerativeCluster(const Graph& g,
                                const AgglomerativeOptions& options) {
  // An unlimited budget never aborts, so the Result form cannot fail here.
  Result<Dendrogram> built = AgglomerativeCluster(g, options, Budget{});
  COD_CHECK(built.ok());
  return std::move(built).value();
}

Result<Dendrogram> AgglomerativeCluster(const Graph& g,
                                        const AgglomerativeOptions& options,
                                        const Budget& budget) {
  return AgglomerativeClusterDelta(g, options, budget, /*dirty=*/nullptr,
                                   /*prev=*/nullptr, /*next=*/nullptr);
}

Result<Dendrogram> AgglomerativeClusterDelta(
    const Graph& g, const AgglomerativeOptions& options, const Budget& budget,
    const std::vector<char>* dirty, const ClusterReplay* prev,
    ClusterReplay* next) {
  const size_t n = g.NumNodes();
  COD_CHECK(n >= 1);
  if (next != nullptr) {
    COD_CHECK(next != prev);
    next->valid = false;
    next->num_nodes = n;
    next->linkage = options.linkage;
    next->components.clear();
  }
  DendrogramBuilder builder(n);
  if (n == 1) {
    if (next != nullptr) {
      next->components.push_back(ClusterReplay::ComponentRec{0, 1, {}});
      next->valid = true;
    }
    return std::move(builder).Build();
  }

  // Canonical component order: labels are assigned in order of the smallest
  // node id per component, so iterating labels visits components anchored at
  // increasing node ids.
  const Components comps = ConnectedComponents(g);
  std::vector<size_t> comp_begin(comps.count + 1, 0);
  for (uint32_t label : comps.label) ++comp_begin[label + 1];
  for (size_t c = 1; c <= comps.count; ++c) comp_begin[c] += comp_begin[c - 1];
  std::vector<NodeId> comp_nodes(n);
  {
    std::vector<size_t> cursor(comp_begin.begin(), comp_begin.end() - 1);
    for (NodeId v = 0; v < n; ++v) comp_nodes[cursor[comps.label[v]]++] = v;
  }

  const bool reusable = prev != nullptr && prev->valid &&
                        prev->num_nodes == n &&
                        prev->linkage == options.linkage &&
                        dirty != nullptr && dirty->size() == n;
  std::unordered_map<NodeId, const ClusterReplay::ComponentRec*> prev_by_anchor;
  if (reusable) {
    prev_by_anchor.reserve(prev->components.size());
    for (const auto& rec : prev->components) prev_by_anchor[rec.anchor] = &rec;
  }

  ClusterState state;
  state.linkage = options.linkage;
  state.adj.resize(n);
  state.size.assign(n, 1);
  state.vertex.resize(n);
  state.active.assign(n, 1);
  state.min_leaf.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    state.vertex[v] = static_cast<CommunityId>(v);
    state.min_leaf[v] = v;
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (options.linkage == Linkage::kSingle) {
        double& slot = state.adj[v][a.to];
        slot = std::max(slot, g.Weight(a.edge));
      } else {
        state.adj[v][a.to] += g.Weight(a.edge);
      }
    }
  }

  // Ref encoding of dendrogram vertices for the replay record: leaves keep
  // their node id; each computed merge gets num_nodes + its index within the
  // component's merge list.
  std::vector<uint32_t> vertex_ref;
  if (next != nullptr) {
    vertex_ref.resize(2 * n);
    for (NodeId v = 0; v < n; ++v) vertex_ref[v] = v;
  }
  // Dendrogram vertices of a replayed component's merges, by merge index.
  std::vector<CommunityId> replay_vertex;

  // Roots of finished components, joined under a single root at the end.
  std::vector<CommunityId> component_roots;
  component_roots.reserve(comps.count);
  std::vector<CommunityId> chain;

  // Cooperative deadline poll. One NN-chain step costs roughly one
  // NearestNeighbor scan (tens of ns to a few us on hub clusters), so a
  // stride of 256 steps surfaces an expired budget within well under a
  // millisecond — against clustering passes that take seconds on large
  // graphs. At step == 0 the poll fires before any merge, so already-expired
  // budgets abort deterministically (see common/deadline.h).
  constexpr size_t kBudgetStride = 256;
  size_t steps = 0;

  for (uint32_t comp = 0; comp < comps.count; ++comp) {
    const size_t begin = comp_begin[comp];
    const size_t end = comp_begin[comp + 1];
    const NodeId anchor = comp_nodes[begin];
    const uint32_t comp_size = static_cast<uint32_t>(end - begin);

    // A component with no member on a changed edge has identical internal
    // structure (membership, edges, weights) to the previous epoch's
    // component at the same anchor: replay its merges verbatim.
    const ClusterReplay::ComponentRec* rec = nullptr;
    if (reusable) {
      bool clean = true;
      for (size_t i = begin; clean && i < end; ++i) {
        clean = (*dirty)[comp_nodes[i]] == 0;
      }
      if (clean) {
        const auto it = prev_by_anchor.find(anchor);
        if (it != prev_by_anchor.end() && it->second->num_nodes == comp_size) {
          rec = it->second;
        }
      }
    }

    if (rec != nullptr) {
      const StatusCode budget_code = budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) return ClusterAbort(budget_code);
      replay_vertex.clear();
      CommunityId root_vertex = static_cast<CommunityId>(anchor);
      for (const ClusterReplay::MergeRec& m : rec->merges) {
        const CommunityId va =
            m.a < n ? static_cast<CommunityId>(m.a) : replay_vertex[m.a - n];
        const CommunityId vb =
            m.b < n ? static_cast<CommunityId>(m.b) : replay_vertex[m.b - n];
        root_vertex = builder.Merge(va, vb);
        replay_vertex.push_back(root_vertex);
      }
      component_roots.push_back(root_vertex);
      if (next != nullptr) next->components.push_back(*rec);
      continue;
    }

    ClusterReplay::ComponentRec out_rec;
    if (next != nullptr) {
      out_rec.anchor = anchor;
      out_rec.num_nodes = comp_size;
      out_rec.merges.reserve(comp_size > 0 ? comp_size - 1 : 0);
    }

    // NN-chain run restricted to this component. Within a connected
    // component every active cluster keeps at least one neighbor until one
    // cluster remains, so chains only die by merging.
    size_t scan_idx = begin;  // next candidate to start a fresh chain
    size_t merges_done = 0;
    CommunityId last_kept = static_cast<CommunityId>(anchor);
    chain.clear();
    while (merges_done + 1 < comp_size) {
      if (steps++ % kBudgetStride == 0) {
        const StatusCode budget_code = budget.ExhaustedCode();
        if (budget_code != StatusCode::kOk) return ClusterAbort(budget_code);
      }
      if (chain.empty()) {
        while (scan_idx < end && !state.active[comp_nodes[scan_idx]]) {
          ++scan_idx;
        }
        COD_CHECK(scan_idx < end);
        chain.push_back(static_cast<CommunityId>(comp_nodes[scan_idx]));
      }
      const CommunityId tip = chain.back();
      const CommunityId nn = state.NearestNeighbor(tip);
      COD_CHECK(nn != kInvalidCommunity);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Mutual nearest neighbors: merge.
        chain.pop_back();
        chain.pop_back();
        const CommunityId other = nn;
        const CommunityId merged_vertex =
            builder.Merge(state.vertex[tip], state.vertex[other]);
        if (next != nullptr) {
          out_rec.merges.push_back(ClusterReplay::MergeRec{
              vertex_ref[state.vertex[tip]], vertex_ref[state.vertex[other]]});
          vertex_ref[merged_vertex] =
              static_cast<uint32_t>(n + out_rec.merges.size() - 1);
        }
        const CommunityId kept = state.Merge(tip, other);
        state.vertex[kept] = merged_vertex;
        last_kept = kept;
        ++merges_done;
      } else {
        chain.push_back(nn);
      }
    }
    component_roots.push_back(state.vertex[last_kept]);
    if (next != nullptr) next->components.push_back(std::move(out_rec));
  }

  COD_CHECK(!component_roots.empty());
  if (component_roots.size() > 1) {
    builder.Merge(component_roots);
  }
  if (next != nullptr) next->valid = true;
  return std::move(builder).Build();
}

}  // namespace cod
