#include "hierarchy/quality.h"

#include <algorithm>
#include <queue>

namespace cod {

double DasguptaCost(const Graph& g, const Dendrogram& dendrogram,
                    const LcaIndex& lca) {
  COD_CHECK_EQ(g.NumNodes(), dendrogram.NumLeaves());
  double cost = 0.0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    const CommunityId c = lca.LcaOfNodes(u, v);
    cost += g.Weight(e) * static_cast<double>(dendrogram.LeafCount(c));
  }
  return cost;
}

std::vector<uint32_t> CutToClusters(const Dendrogram& dendrogram,
                                    size_t target_clusters) {
  COD_CHECK(target_clusters >= 1);
  // Max-heap of current clusters by leaf count; expand the largest until
  // the target is reached or only leaves remain.
  auto cmp = [&](CommunityId a, CommunityId b) {
    return dendrogram.LeafCount(a) < dendrogram.LeafCount(b);
  };
  std::priority_queue<CommunityId, std::vector<CommunityId>, decltype(cmp)>
      heap(cmp);
  heap.push(dendrogram.Root());
  size_t count = 1;
  std::vector<CommunityId> frozen;
  while (count < target_clusters && !heap.empty()) {
    const CommunityId top = heap.top();
    heap.pop();
    if (dendrogram.IsLeaf(top)) {
      frozen.push_back(top);
      continue;
    }
    const auto kids = dendrogram.Children(top);
    count += kids.size() - 1;
    for (CommunityId child : kids) heap.push(child);
  }
  std::vector<uint32_t> labels(dendrogram.NumLeaves(), 0);
  uint32_t next = 0;
  auto assign = [&](CommunityId c) {
    for (NodeId v : dendrogram.Members(c)) labels[v] = next;
    ++next;
  };
  for (CommunityId c : frozen) assign(c);
  while (!heap.empty()) {
    assign(heap.top());
    heap.pop();
  }
  if (next == 0) {  // degenerate: target 1
    std::fill(labels.begin(), labels.end(), 0);
  }
  return labels;
}

double Modularity(const Graph& g, std::span<const uint32_t> labels) {
  COD_CHECK_EQ(labels.size(), g.NumNodes());
  if (g.NumEdges() == 0) return 0.0;
  uint32_t num_clusters = 0;
  for (uint32_t label : labels) {
    num_clusters = std::max(num_clusters, label + 1);
  }
  std::vector<double> intra(num_clusters, 0.0);
  std::vector<double> degree(num_clusters, 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (labels[u] == labels[v]) intra[labels[u]] += 1.0;
    degree[labels[u]] += 1.0;
    degree[labels[v]] += 1.0;
  }
  const double m = static_cast<double>(g.NumEdges());
  double q = 0.0;
  for (uint32_t c = 0; c < num_clusters; ++c) {
    q += intra[c] / m - (degree[c] / (2.0 * m)) * (degree[c] / (2.0 * m));
  }
  return q;
}

}  // namespace cod
