// Binary persistence for community hierarchies.
//
// Building a hierarchy is the expensive part of engine construction on large
// graphs; saving it alongside the HIMOR index lets a service restart without
// re-clustering. The format stores the merge structure (per internal vertex,
// its children); depths and leaf intervals are recomputed on load, so a
// loaded dendrogram is bit-identical in behaviour to the original.

#ifndef COD_HIERARCHY_DENDROGRAM_IO_H_
#define COD_HIERARCHY_DENDROGRAM_IO_H_

#include <string>

#include "common/status.h"
#include "hierarchy/dendrogram.h"

namespace cod {

Status SaveDendrogram(const Dendrogram& dendrogram, const std::string& path);

Result<Dendrogram> LoadDendrogram(const std::string& path);

}  // namespace cod

#endif  // COD_HIERARCHY_DENDROGRAM_IO_H_
