// Binary persistence for community hierarchies.
//
// Building a hierarchy is the expensive part of engine construction on large
// graphs; saving it alongside the HIMOR index lets a service restart without
// re-clustering. The format stores the merge structure (per internal vertex,
// its children); depths and leaf intervals are recomputed on load, so a
// loaded dendrogram is bit-identical in behaviour to the original.
//
// File format v2 wraps the payload in a CRC32C envelope (magic, version,
// length-prefixed payload, trailing checksum): any single-byte flip or
// truncation of a saved file is detected at load time and reported as a
// clean Status — never a crash, never a silently different hierarchy. The
// payload codec is also exposed buffer-to-buffer for embedding into larger
// containers (storage/epoch_snapshot.h), which carry their own per-section
// checksums.

#ifndef COD_HIERARCHY_DENDROGRAM_IO_H_
#define COD_HIERARCHY_DENDROGRAM_IO_H_

#include <string>

#include "common/binary_io.h"
#include "common/status.h"
#include "hierarchy/dendrogram.h"

namespace cod {

Status SaveDendrogram(const Dendrogram& dendrogram, const std::string& path);

Result<Dendrogram> LoadDendrogram(const std::string& path);

// Buffer forms of the same payload codec (no magic/version/CRC envelope —
// the embedding container owns integrity). Deserialize validates structure
// exactly like LoadDendrogram: corrupt bytes produce a Status, never a
// crash or an invalid Dendrogram.
void SerializeDendrogram(const Dendrogram& dendrogram,
                         BinaryBufferWriter& out);
Result<Dendrogram> DeserializeDendrogram(BinarySpanReader& in);

}  // namespace cod

#endif  // COD_HIERARCHY_DENDROGRAM_IO_H_
