// Community hierarchy (dendrogram) over a graph's nodes.
//
// A Dendrogram is a rooted tree whose leaves are the graph's nodes and whose
// internal vertices are communities: the community held by an internal vertex
// is the set of leaves below it (paper Sec. II-A). Vertices 0..n-1 are the
// leaves (leaf i <=> NodeId i); internal vertices follow in construction
// order, so for a binary agglomerative hierarchy the root is vertex 2n-2.
//
// The structure is immutable after Build() and precomputes:
//  * Depth(c): distance from the root, with Depth(root) == 1 as in the paper.
//  * Members(c): the leaves below c, contiguous in a global leaf ordering, so
//    membership tests (Contains) are two integer comparisons.
//  * PathToRoot(q): the chain H(q) of communities containing node q, sorted
//    deepest-first, excluding the singleton leaf itself.

#ifndef COD_HIERARCHY_DENDROGRAM_H_
#define COD_HIERARCHY_DENDROGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace cod {

using CommunityId = uint32_t;

inline constexpr CommunityId kInvalidCommunity = static_cast<CommunityId>(-1);

class Dendrogram {
 public:
  Dendrogram() = default;

  Dendrogram(const Dendrogram&) = delete;
  Dendrogram& operator=(const Dendrogram&) = delete;
  Dendrogram(Dendrogram&&) = default;
  Dendrogram& operator=(Dendrogram&&) = default;

  size_t NumLeaves() const { return num_leaves_; }
  size_t NumVertices() const { return parent_.size(); }
  CommunityId Root() const { return root_; }

  bool IsLeaf(CommunityId c) const { return c < num_leaves_; }
  // The graph node held by leaf vertex `c`.
  NodeId LeafNode(CommunityId c) const {
    COD_DCHECK(IsLeaf(c));
    return static_cast<NodeId>(c);
  }
  // The leaf vertex of graph node `v`.
  CommunityId LeafOf(NodeId v) const {
    COD_DCHECK(v < num_leaves_);
    return static_cast<CommunityId>(v);
  }

  // kInvalidCommunity for the root.
  CommunityId Parent(CommunityId c) const {
    COD_DCHECK(c < parent_.size());
    return parent_[c];
  }

  std::span<const CommunityId> Children(CommunityId c) const {
    COD_DCHECK(c < parent_.size());
    return {children_.data() + child_offsets_[c],
            child_offsets_[c + 1] - child_offsets_[c]};
  }

  // Depth from the root; Depth(Root()) == 1 (paper convention dep in Z+).
  uint32_t Depth(CommunityId c) const {
    COD_DCHECK(c < parent_.size());
    return depth_[c];
  }

  // Number of graph nodes in community `c` (1 for leaves).
  uint32_t LeafCount(CommunityId c) const {
    COD_DCHECK(c < parent_.size());
    return leaf_end_[c] - leaf_begin_[c];
  }

  // The nodes of community `c`, contiguous in the global leaf order.
  std::span<const NodeId> Members(CommunityId c) const {
    COD_DCHECK(c < parent_.size());
    return {leaf_order_.data() + leaf_begin_[c],
            static_cast<size_t>(leaf_end_[c] - leaf_begin_[c])};
  }

  bool Contains(CommunityId c, NodeId v) const {
    COD_DCHECK(c < parent_.size());
    COD_DCHECK(v < num_leaves_);
    const uint32_t pos = leaf_position_[v];
    return pos >= leaf_begin_[c] && pos < leaf_end_[c];
  }

  // H(q): every non-leaf community containing `q`, deepest first; the last
  // element is the root. Size equals Depth(Parent(LeafOf(q))).
  std::vector<CommunityId> PathToRoot(NodeId q) const;

  // True iff `ancestor` is `c` itself or an ancestor of `c`.
  bool IsAncestorOrSelf(CommunityId ancestor, CommunityId c) const {
    return leaf_begin_[ancestor] <= leaf_begin_[c] &&
           leaf_end_[c] <= leaf_end_[ancestor];
  }

 private:
  friend class DendrogramBuilder;

  size_t num_leaves_ = 0;
  CommunityId root_ = kInvalidCommunity;
  std::vector<CommunityId> parent_;
  std::vector<size_t> child_offsets_;
  std::vector<CommunityId> children_;
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> leaf_begin_;
  std::vector<uint32_t> leaf_end_;
  std::vector<NodeId> leaf_order_;      // leaves in DFS order
  std::vector<uint32_t> leaf_position_; // inverse of leaf_order_
};

// Accumulates merges bottom-up (agglomerative) or from an explicit parent
// relation and produces an immutable Dendrogram.
class DendrogramBuilder {
 public:
  explicit DendrogramBuilder(size_t num_leaves);

  // Creates a new internal vertex with the given children (which must be
  // roots of their current subtrees). Returns the new vertex's id.
  CommunityId Merge(std::span<const CommunityId> children);
  CommunityId Merge(CommunityId a, CommunityId b) {
    const CommunityId pair[2] = {a, b};
    return Merge(pair);
  }

  // Number of vertices created so far (leaves + internal).
  size_t NumVertices() const { return parent_.size(); }

  // Finalizes; every vertex except exactly one must have a parent.
  Dendrogram Build() &&;

 private:
  size_t num_leaves_;
  std::vector<CommunityId> parent_;
  std::vector<std::vector<CommunityId>> children_;
};

}  // namespace cod

#endif  // COD_HIERARCHY_DENDROGRAM_H_
