// ShardedCodService: N component-scoped DynamicCodService shard engines
// behind a deterministic scatter/gather router — the sharded
// implementation of CodServiceInterface.
//
// Layout: the input graph is partitioned COMPONENT-ATOMICALLY
// (serving/partition.h) into num_shards subgraphs, each covering the full
// node id space but owning only its components' edges. Every shard engine
// runs with EngineOptions::component_scoped forced on, so a query's
// answer is a pure function of its component's subgraph — which is what
// makes the router's merged results bit-identical across 1, 2, or 4
// shards (and across worker counts): the layout decides WHERE a query
// runs, never WHAT it answers.
//
// Scatter/gather (RunShardedQueryBatch, core/query_batch.h): a QueryBatch
// is routed per shard by the partition, fanned as interactive-priority
// chunks into ONE task group — no cross-shard barrier, so a shard stalled
// in a rebuild or a slow query never delays another shard's start — and
// gathered back into spec order. Query i keeps BatchQuerySeed(batch_seed,
// i) from its ORIGINAL batch position regardless of routing.
//
// Shard-aware degradation: a query whose deadline dies on its shard comes
// back as a degraded non-answer (kOk, found = false, degraded = true)
// rather than an error — the batch answers from the shards that made the
// deadline and tags the rest (BatchStats::shard_missed). The
// "serving/shard_deadline" failpoint fails a whole shard's slice
// deterministically for tests.
//
// Rebuilds, epochs, and durability are PER SHARD: each engine publishes
// its own epoch stream, retries its own failures, and snapshots into its
// own "shard-%04d" subdirectory with independent retention and corruption
// quarantine. Recover() warm-restores every shard that has a usable
// snapshot and cold-rebuilds (from the caller's graph) any shard whose
// snapshots are missing or exhausted by corruption — one shard's bad disk
// never costs the others their warm restart. A fingerprint mismatch
// (different engine parameters, seed, or shard layout) refuses recovery
// outright: those snapshots would answer differently.

#ifndef COD_SERVING_SHARDED_SERVICE_H_
#define COD_SERVING_SHARDED_SERVICE_H_

#include <memory>
#include <vector>

#include "serving/dynamic_service.h"
#include "serving/partition.h"
#include "serving/service_interface.h"

namespace cod {

class ShardedCodService : public CodServiceInterface {
 public:
  // Partitions `initial_graph` and builds every shard's first epoch
  // synchronously (CHECK-fails on a first-build error, like the mono
  // service). `options` must Validate(); engine.component_scoped is forced
  // on for the shard engines regardless of its incoming value. One shared
  // attribute table backs all shards.
  ShardedCodService(Graph initial_graph, AttributeTable attrs,
                    const ServiceOptions& options);

  // Warm restart from the per-shard snapshot layout under
  // options.snapshot_dir (base/shard-%04d). `cold_graph` / `cold_attrs`
  // are the fallback source of truth: any shard whose snapshots are
  // missing or all corrupt (kNotFound after quarantine) is cold-rebuilt
  // from its partition slice while the other shards warm-restore — per-
  // shard epochs mean a mixed restart is fully consistent. Other errors
  // (kFailedPrecondition fingerprint mismatch, I/O errors) fail the whole
  // recovery. The caller must pass the graph the service was originally
  // built from (plus the updates it wants replayed); the partition is
  // recomputed from it deterministically.
  static Result<std::unique_ptr<ShardedCodService>> Recover(
      const ServiceOptions& options, Graph cold_graph,
      AttributeTable cold_attrs);

  ~ShardedCodService() override = default;

  // ---- CodServiceInterface ----

  // Same-shard edges delegate to the owning engine. An edge whose
  // endpoints live on DIFFERENT shards is rejected (returns false and
  // counts cod_shard_cross_edge_rejected_total): the partition is fixed at
  // construction, and silently dropping the edge into one shard would
  // break the component-scoped answer contract. Re-shard by rebuilding the
  // service to admit such edges.
  bool AddEdge(NodeId u, NodeId v, double weight = 1.0) override;
  bool RemoveEdge(NodeId u, NodeId v) override;

  size_t pending_updates() const override;  // sum over shards
  uint64_t epoch() const override;          // MIN over shards (freshness floor)
  bool epoch_degraded() const override;     // any shard degraded
  size_t NumEdges() const override;         // sum over shards
  RebuildStats rebuild_stats() const override;  // field-wise sum
  bool RefreshDue() const override;             // any shard due

  // Refreshes EVERY shard, continuing past failures (a failed shard keeps
  // serving its last good epoch); returns the first error encountered.
  Status Refresh() override;
  // Schedules a rebuild on every shard that does not already have one in
  // flight; true if any was scheduled.
  bool RefreshAsync() override;
  void WaitForRebuild() override;

  // Routed to the shard that owns q's component.
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                      Rng& rng) override;
  CodResult QueryCodU(NodeId q, uint32_t k, Rng& rng) override;

  // The scatter/gather path: snapshots one epoch per shard, routes specs
  // by the partition, and runs RunShardedQueryBatch (determinism and
  // degradation contract documented there and above).
  using CodServiceInterface::QueryBatch;
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    TaskScheduler& scheduler,
                                    uint64_t batch_seed,
                                    const BatchOptions& options,
                                    BatchStats* stats) const override;

  // ---- Sharded-only surface (introspection / test hooks) ----
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const GraphPartition& partition() const { return partition_; }
  uint32_t ShardOf(NodeId v) const { return partition_.shard_of_node[v]; }
  DynamicCodService& shard(uint32_t s) { return *shards_[s]; }
  const DynamicCodService& shard(uint32_t s) const { return *shards_[s]; }

  // The per-shard options `shard` runs with: component_scoped forced on,
  // snapshot_dir rebased to "<base>/shard-%04u". Exposed so recovery tests
  // can write/damage exactly what the service would read.
  static ServiceOptions ShardOptions(const ServiceOptions& base,
                                     uint32_t shard);
  // The "shard-%04u" subdirectory name for `shard` ("" when `base` is "").
  static std::string ShardSnapshotDir(const std::string& base,
                                      uint32_t shard);

 private:
  ShardedCodService(std::shared_ptr<const AttributeTable> attrs,
                    const ServiceOptions& options, GraphPartition partition,
                    std::vector<std::unique_ptr<DynamicCodService>> shards);

  std::shared_ptr<const AttributeTable> attrs_;
  ServiceOptions options_;
  GraphPartition partition_;
  std::vector<std::unique_ptr<DynamicCodService>> shards_;
};

}  // namespace cod

#endif  // COD_SERVING_SHARDED_SERVICE_H_
