#include "serving/partition.h"

#include <algorithm>
#include <cstdint>

#include "common/status.h"
#include "graph/connectivity.h"

namespace cod {
namespace {

struct ComponentInfo {
  uint32_t label = 0;
  uint32_t size = 0;
  // kAttributeLocality grouping key: the component's dominant attribute
  // (most member occurrences, smallest id on ties); kInvalidAttribute when
  // no member carries any attribute.
  AttributeId dominant = kInvalidAttribute;
};

// Greedy longest-processing-time placement over an already-ordered
// component list: each component goes to the lightest shard so far, ties
// toward the smallest shard index. Deterministic for a deterministic
// input order.
void PlaceGreedy(const std::vector<ComponentInfo>& order,
                 const Components& comps, GraphPartition& out) {
  std::vector<uint64_t> load(out.num_shards, 0);
  std::vector<uint32_t> shard_of_comp(comps.count, 0);
  for (const ComponentInfo& c : order) {
    uint32_t best = 0;
    for (uint32_t s = 1; s < out.num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_comp[c.label] = best;
    load[best] += c.size;
  }
  out.shard_of_node.resize(comps.label.size());
  out.shard_nodes.assign(out.num_shards, 0);
  for (size_t v = 0; v < comps.label.size(); ++v) {
    const uint32_t s = shard_of_comp[comps.label[v]];
    out.shard_of_node[v] = s;
    ++out.shard_nodes[s];
  }
}

std::vector<ComponentInfo> DescribeComponents(const Graph& g,
                                              const AttributeTable& attrs,
                                              const Components& comps,
                                              bool want_dominant) {
  std::vector<ComponentInfo> info(comps.count);
  for (uint32_t c = 0; c < comps.count; ++c) info[c].label = c;
  for (uint32_t label : comps.label) ++info[label].size;
  if (want_dominant && attrs.NumAttributes() > 0) {
    // One counting pass per component would be O(components x attributes);
    // instead count (component, attribute) pairs in a flat map keyed by
    // component-major order so the scan stays O(sum of attribute rows).
    std::vector<std::vector<uint32_t>> counts(
        comps.count, std::vector<uint32_t>());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      auto& local = counts[comps.label[v]];
      for (AttributeId a : attrs.AttributesOf(v)) {
        if (local.size() <= a) local.resize(a + 1, 0);
        ++local[a];
      }
    }
    for (uint32_t c = 0; c < comps.count; ++c) {
      uint32_t best_count = 0;
      AttributeId best = kInvalidAttribute;
      for (AttributeId a = 0; a < counts[c].size(); ++a) {
        if (counts[c][a] > best_count) {
          best_count = counts[c][a];
          best = a;
        }
      }
      info[c].dominant = best;
    }
  }
  return info;
}

}  // namespace

GraphPartition PartitionGraph(const Graph& g, const AttributeTable& attrs,
                              uint32_t num_shards,
                              PartitionStrategy strategy) {
  COD_CHECK(num_shards >= 1);
  COD_CHECK_EQ(g.NumNodes(), attrs.NumNodes());
  GraphPartition out;
  out.num_shards = num_shards;
  const Components comps = ConnectedComponents(g);
  std::vector<ComponentInfo> order = DescribeComponents(
      g, attrs, comps,
      /*want_dominant=*/strategy == PartitionStrategy::kAttributeLocality);
  switch (strategy) {
    case PartitionStrategy::kConnectedComponents:
      // Size-balanced: biggest components placed first (LPT), label order
      // breaking size ties so the order is total and deterministic.
      std::sort(order.begin(), order.end(),
                [](const ComponentInfo& a, const ComponentInfo& b) {
                  if (a.size != b.size) return a.size > b.size;
                  return a.label < b.label;
                });
      break;
    case PartitionStrategy::kAttributeLocality:
      // Topic-clustered: components sharing a dominant attribute are
      // placed consecutively, so the greedy pass tends to co-locate them
      // on whichever shard is lightest when their run starts. Within a
      // topic, biggest first; attribute-less components (dominant ==
      // kInvalidAttribute, the largest id) sort last as pure filler.
      std::sort(order.begin(), order.end(),
                [](const ComponentInfo& a, const ComponentInfo& b) {
                  if (a.dominant != b.dominant) return a.dominant < b.dominant;
                  if (a.size != b.size) return a.size > b.size;
                  return a.label < b.label;
                });
      break;
  }
  PlaceGreedy(order, comps, out);
  return out;
}

Graph BuildShardGraph(const Graph& g, const GraphPartition& partition,
                      uint32_t shard) {
  COD_CHECK(shard < partition.num_shards);
  COD_CHECK_EQ(g.NumNodes(), partition.shard_of_node.size());
  GraphBuilder builder(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    // Component-atomic partitions put both endpoints on one shard; the
    // check is for span-of-edges correctness, not a rejection path.
    COD_DCHECK(partition.shard_of_node[u] == partition.shard_of_node[v]);
    if (partition.shard_of_node[u] != shard) continue;
    builder.AddEdge(u, v, g.Weight(e));
  }
  return std::move(builder).Build();
}

}  // namespace cod
