#include "serving/service_options.h"

#include "common/random.h"

namespace cod {

Status ServiceOptions::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("ServiceOptions: num_shards must be >= 1");
  }
  if (async_rebuild && scheduler == nullptr) {
    return Status::InvalidArgument(
        "ServiceOptions: async_rebuild requires a scheduler");
  }
  if (snapshots_keep == 0) {
    return Status::InvalidArgument(
        "ServiceOptions: snapshots_keep must be >= 1");
  }
  if (rebuild_backoff_initial_ms > rebuild_backoff_max_ms) {
    return Status::InvalidArgument(
        "ServiceOptions: rebuild_backoff_initial_ms exceeds "
        "rebuild_backoff_max_ms");
  }
  if (engine.k == 0) {
    return Status::InvalidArgument("ServiceOptions: engine.k must be >= 1");
  }
  if (engine.theta == 0) {
    return Status::InvalidArgument(
        "ServiceOptions: engine.theta must be >= 1");
  }
  if (engine.himor_max_rank == 0) {
    return Status::InvalidArgument(
        "ServiceOptions: engine.himor_max_rank must be >= 1");
  }
  if (engine.sketch_bits > 16) {
    return Status::InvalidArgument(
        "ServiceOptions: engine.sketch_bits must be <= 16 (signature "
        "capacity 2^bits u64 per community)");
  }
  if (rebuild_threshold < 0.0) {
    return Status::InvalidArgument(
        "ServiceOptions: rebuild_threshold must be >= 0");
  }
  if (rebuild_budget_seconds < 0.0) {
    return Status::InvalidArgument(
        "ServiceOptions: rebuild_budget_seconds must be >= 0");
  }
  if (delta_max_dirty_fraction < 0.0 || delta_max_dirty_fraction > 1.0) {
    return Status::InvalidArgument(
        "ServiceOptions: delta_max_dirty_fraction must be in [0, 1]");
  }
  return Status::Ok();
}

namespace {

// Feeds one value into the digest: xor-fold, then advance through the
// SplitMix64 scrambler so field ORDER matters (swapping k and theta
// changes the digest) and a zero field still perturbs the state.
void Mix(uint64_t& h, uint64_t v) {
  h ^= v;
  uint64_t state = h;
  h = SplitMix64(state);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t ServiceOptions::Fingerprint() const {
  uint64_t h = 0xc0d5e41f19e124ULL;  // arbitrary non-zero domain tag
  Mix(h, seed);
  Mix(h, engine.k);
  Mix(h, engine.theta);
  Mix(h, engine.himor_max_rank);
  Mix(h, static_cast<uint64_t>(engine.diffusion));
  Mix(h, static_cast<uint64_t>(engine.transform.transform));
  Mix(h, DoubleBits(engine.transform.beta));
  Mix(h, engine.component_scoped ? 1 : 0);
  // sketch_bits shapes the PERSISTED state (the kSketch snapshot section and
  // the rung's answer surface), so it gates warm-restore compatibility.
  // sketch_prune and sketch_rung deliberately do NOT: pruning is proven
  // answer-preserving, and the rung only changes which degraded tier answers
  // under pressure — both are runtime latency knobs a restart may flip.
  Mix(h, engine.sketch_bits);
  // Delta mode changes the RR sampling schedule (counter-seeded per sample
  // vs per-ticket streams), so its answers differ from non-delta answers
  // for the same seed — it must gate snapshot compatibility. The dirty
  // threshold does NOT: both sides of it answer identically.
  Mix(h, delta_rebuild ? 1 : 0);
  Mix(h, num_shards);
  Mix(h, static_cast<uint64_t>(partitioner));
  return h;
}

}  // namespace cod
