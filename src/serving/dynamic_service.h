// Epoch-based COD serving over a changing graph — the MONO implementation
// of CodServiceInterface (one engine, whole graph). The sharded
// implementation (serving/sharded_service.h) composes N of these behind
// the scatter/gather router.
//
// The paper (Sec. IV-B discussion, conclusion) leaves truly incremental
// maintenance of the hierarchy and HIMOR under updates as an open problem —
// the compressed influence computation over the hierarchy does not update
// efficiently. This service takes the standard engineering route instead
// (compare LSM compaction): queries are answered from the last built
// *epoch* (graph snapshot + hierarchy + index) while edge updates
// accumulate; when the accumulated drift exceeds `rebuild_threshold`
// (fraction of the snapshot's edge count), a rebuild is SCHEDULED — as a
// rebuild-priority task on `scheduler` under async_rebuild, or left to the
// owner (RefreshDue() / Refresh()) otherwise. Query paths never rebuild
// inline: QueryCodL/U only
// snapshot-and-serve, so a threshold-crossing query costs the same as any
// other. Between rebuilds, answers are stale by at most the pending-update
// set, which is always inspectable.
//
// Concurrency model (RCU-style epoch publication): each epoch is an
// immutable EngineCore published through an atomic shared_ptr. Readers call
// Snapshot() — a single atomic load — and query the returned core with
// their own QueryWorkspace; they never block, and a snapshot stays valid
// (and answer-stable) for as long as the caller holds it, across any number
// of later rebuilds. Writers (AddEdge / RemoveEdge) mutate only the pending
// edge set under a mutex.
//
// Epoch determinism: every build ticket t (0-based) samples with RNG seed
// `options.seed + t`, so a service replaying the same
// update/refresh/failure sequence publishes bit-identical epochs regardless
// of whether rebuilds ran inline or on the scheduler. (A FAILED build consumes
// its ticket, so after failures the published epoch number no longer equals
// the ticket number — determinism is per replayed sequence, not per epoch
// number.)
//
// Incremental rebuilds (ServiceOptions::delta_rebuild): every rebuild runs
// the counter-seeded per-sample schedule instead (RrSampleSeed(seed,
// source * theta + j) — the same seeds every epoch), which makes an epoch's
// bytes a pure function of its GRAPH, independent of the ticket or of which
// update batches led there. That is the property that lets a delta rebuild
// reuse the previous epoch's RR samples and dendrogram merges wherever the
// dirty-vertex bitmap proves them untouched: a delta-rebuilt epoch is
// bit-identical to a cold rebuild on the same final edge set. The service
// decides delta vs full per batch (dirty fraction vs delta_max_dirty_
// fraction; any delta failure falls back to full) and counts decisions in
// cod_rebuild_delta_{attempts,fallbacks}_total.
//
// Failure containment and degraded publication: a rebuild can fail — a
// failpoint ("dynamic_service/rebuild", "himor/build"; see
// common/failpoint.h) simulates an infrastructure error, or the HIMOR build
// runs out of its `rebuild_budget_seconds`. A failed rebuild NEVER touches
// the published epoch: queries keep serving the last good epoch, the
// captured pending-update count is restored so the drift threshold can
// re-trigger, and the error is recorded in rebuild_stats(). With
// `publish_without_index` (the default), an index-only failure is not a
// rebuild failure at all: the epoch publishes anyway in the index-absent
// DEGRADED mode — fresh graph, hierarchy, and correct CODL answers via the
// compressed-evaluation (CODL-) fallback, just no index acceleration. The
// index is an accelerator; losing it degrades latency, never availability
// or freshness.
//
// Non-blocking retries: a failed ASYNC rebuild is NOT retried by sleeping
// in a scheduler worker. The attempt records a monotonic `retry_after`
// deadline and returns its worker immediately; the scheduler's integrated
// timer facility (TaskScheduler::ScheduleAt — no dedicated per-service
// thread any more) or the next MaybeRefresh from a query, whichever
// observes the deadline first, re-submits the attempt once it passes. While
// a retry is scheduled the rebuild counts as in flight — RefreshAsync
// dedupes and WaitForRebuild waits, exactly as during one long build — but
// no thread is occupied.

#ifndef COD_SERVING_DYNAMIC_SERVICE_H_
#define COD_SERVING_DYNAMIC_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "core/cod_engine.h"
#include "serving/service_interface.h"

namespace cod {

class SnapshotStore;

class DynamicCodService : public CodServiceInterface {
 public:
  // A published epoch: queries against `core` are answered as of that
  // epoch's graph snapshot. Holding the shared_ptr keeps the epoch alive
  // after later rebuilds retire it. `degraded` marks an index-absent epoch
  // (see ServiceOptions::publish_without_index).
  struct EpochSnapshot {
    std::shared_ptr<const EngineCore> core;
    uint64_t epoch = 0;
    bool degraded = false;
  };

  // Takes ownership of the initial graph; `attrs` must cover the same node
  // set and is fixed for the service's lifetime (node set is fixed too).
  // The first epoch is built synchronously, so the service is immediately
  // queryable; its build CHECK-fails on error (there is no good epoch to
  // fall back to), so arm rebuild failpoints only AFTER construction.
  // Options must Validate(); sharding fields are carried only for the
  // snapshot fingerprint — this class is always exactly one engine.
  DynamicCodService(Graph initial_graph, AttributeTable attrs,
                    const ServiceOptions& options);
  // Shared-attrs form for embedders that hold the table elsewhere (the
  // sharded service shares ONE table across all shard engines).
  DynamicCodService(Graph initial_graph,
                    std::shared_ptr<const AttributeTable> attrs,
                    const ServiceOptions& options);

  // Warm restart: reconstructs a service from the newest valid snapshot in
  // options.snapshot_dir, skipping the expensive clustering/index build —
  // the restored epoch keeps its epoch number and rebuild ticket, so the
  // service answers bit-identically to the one that wrote the snapshot and
  // later rebuilds continue the same deterministic seed stream. Corrupt
  // snapshots are quarantined (".corrupt") and older ones tried; returns
  // kNotFound when no usable snapshot exists (cold-construct instead) and
  // kFailedPrecondition when the newest valid snapshot was written under a
  // different options fingerprint (seed, engine parameters, or sharding
  // layout) — restoring it would silently change answers.
  static Result<std::unique_ptr<DynamicCodService>> Recover(
      const ServiceOptions& options);

  // Cancels any scheduled retry (restoring its pending count, like a
  // retry-cap give-up) including its scheduler timer, then waits out every
  // task this service still has in flight on the scheduler.
  ~DynamicCodService() override;

  // ---- CodServiceInterface ----
  bool AddEdge(NodeId u, NodeId v, double weight = 1.0) override;
  bool RemoveEdge(NodeId u, NodeId v) override;
  size_t pending_updates() const override;
  uint64_t epoch() const override { return published_.load()->epoch; }
  bool epoch_degraded() const override { return published_.load()->degraded; }
  size_t NumEdges() const override;
  RebuildStats rebuild_stats() const override;
  bool RefreshDue() const override;

  // Synchronously rebuilds the snapshot, hierarchy, and index from the
  // current edge set and publishes the new epoch before returning (a
  // scheduled retry is absorbed — its captured updates fold into this
  // build — and an executing background attempt is waited out first). On
  // failure the old epoch stays published, the captured pending updates are
  // restored, and the build error is returned (no retries — call again to
  // retry). An index-only failure publishes degraded and returns Ok when
  // publish_without_index is set.
  Status Refresh() override;

  // Schedules a rebuild on `scheduler` and returns immediately; false if
  // one is already in flight — executing OR waiting on a retry deadline —
  // (callers keep serving the stale epoch either way). Requires
  // ServiceOptions::async_rebuild. Failed builds are re-scheduled with
  // capped exponential backoff; if every attempt fails, the old epoch
  // keeps serving and rebuild_stats().last_error records why.
  bool RefreshAsync() override;

  // Blocks until no background rebuild is in flight, waiting through any
  // scheduled retries (test/shutdown hook).
  void WaitForRebuild() override;

  // Serves from the current epoch — snapshot-and-serve only, never
  // rebuilding inline. Under async_rebuild a threshold crossing schedules
  // the rebuild on the scheduler (and kicks a due retry); in sync mode the
  // caller owns rebuilds via RefreshDue()/Refresh(). Scratch comes from a
  // lazily built thread-local QueryWorkspace rebound to the snapshot, so
  // repeated single queries do not reallocate.
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                      Rng& rng) override;
  CodResult QueryCodU(NodeId q, uint32_t k, Rng& rng) override;

  // Fans a workload across `scheduler` against ONE snapshot of the current
  // epoch; deterministic given (snapshot, specs, batch_seed) — see
  // core/query_batch.h. Never triggers or waits for rebuilds.
  using CodServiceInterface::QueryBatch;
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    TaskScheduler& scheduler,
                                    uint64_t batch_seed,
                                    const BatchOptions& options,
                                    BatchStats* stats) const override;

  // ---- Mono-only surface ----

  // True while a failed async rebuild is waiting out its backoff. No
  // worker is occupied during this window; the retry fires from the
  // scheduler timer or the next query's MaybeRefresh once `retry_after`
  // passes.
  bool RetryScheduled() const;

  // The current epoch, via one atomic load — never blocks, including during
  // a background rebuild.
  EpochSnapshot Snapshot() const;

  // The engine core of the current epoch (stale by up to
  // pending_updates()). The reference is only guaranteed until the next
  // rebuild publishes — concurrent callers must use Snapshot() instead.
  const EngineCore& engine() const { return *published_.load()->core; }

 private:
  struct Epoch {
    uint64_t epoch = 0;
    bool degraded = false;
    std::shared_ptr<const EngineCore> core;
  };
  using EdgeMap = std::unordered_map<uint64_t, double>;

  // A successfully built epoch core; degraded = published index-absent.
  struct EpochBuild {
    std::shared_ptr<const EngineCore> core;
    bool degraded = false;
  };

  // A failed async attempt waiting out its backoff. Owns the captured edge
  // snapshot and ticket so the re-submitted attempt is byte-identical to
  // the failed one (same seed stream). Guarded by mu_; mutually exclusive
  // with attempt_running_ (an attempt either executes or waits, never
  // both).
  struct PendingRetry {
    EdgeMap edges;
    uint64_t build_index = 0;
    size_t captured_pending = 0;
    uint32_t attempt = 0;          // attempt number the retry will run
    uint32_t next_backoff_ms = 0;  // backoff if THAT attempt also fails
    std::chrono::steady_clock::time_point retry_after;
    uint64_t timer_id = 0;  // scheduler timer armed for retry_after
  };

  // Schedules work if drift crossed the threshold (async mode) and kicks a
  // due retry; never rebuilds inline.
  void MaybeRefresh();
  bool DriftOverThresholdLocked() const;
  // True while a rebuild ticket is unresolved: an attempt is executing or
  // a retry is scheduled.
  bool RebuildInFlightLocked() const {
    return attempt_running_ || retry_.has_value();
  }
  // Builds an epoch core from an edge snapshot. Runs on the single-flight
  // build ticket with no locks held; non-const because delta mode advances
  // the ticket-owned reuse caches below. Fails on the
  // "dynamic_service/rebuild" failpoint or — unless publish_without_index
  // turns it into a degraded success — an over-budget / failpointed HIMOR
  // build.
  Result<EpochBuild> BuildEpochCore(const EdgeMap& edges,
                                    uint64_t build_index);
  // Delta-mode tail of BuildEpochCore: replays clean dendrogram components
  // and reuses clean RR samples against dirty_since_cache_ (see
  // HimorIndex::BuildDelta). Falls back to a cold build — same
  // counter-seeded schedule, no reuse, bit-identical answers — when there
  // is no base cache, the estimated invalidated-sample fraction exceeds
  // delta_max_dirty_fraction,
  // the "core/delta_rebuild" failpoint is armed, or a reuse attempt fails
  // with a non-budget error.
  Result<EpochBuild> BuildEpochCoreDelta(std::shared_ptr<const Graph> graph);
  // Folds dirty_pending_ into dirty_since_cache_ and clears it. Called at
  // build capture (mu_ held, this thread owns the ticket); the fold is a
  // union, so a ticket that fails and is re-captured stays correct.
  void FoldDirtyLocked();
  // One async attempt: build, publish on success, otherwise schedule the
  // retry deadline (or give up past the cap) — and return to the pool
  // either way.
  void RunRebuildAttempt(EdgeMap edges, uint64_t build_index,
                         size_t captured_pending, uint32_t attempt,
                         uint32_t backoff_ms);
  // Moves the scheduled retry to the scheduler as an executing attempt
  // (cancelling its timer if still armed). Requires mu_ held and retry_
  // set.
  void SubmitRetryLocked();
  // Scheduler-timer callback (maintenance priority): submits the retry if
  // it is still scheduled and due; otherwise a no-op (absorbed by Refresh,
  // already kicked by a query, or superseded).
  void OnRetryTimer();
  void PublishEpoch(std::shared_ptr<const EngineCore> core, bool degraded,
                    uint64_t build_index);
  static uint64_t EdgeKey(NodeId u, NodeId v, size_t n);

  // Constructor behind Recover(): adopts an already-decoded epoch instead
  // of building one. `core`'s graph seeds the edge map; `epoch` /
  // `build_index` restore publication continuity.
  struct RecoveredTag {};
  DynamicCodService(RecoveredTag, std::shared_ptr<const AttributeTable> attrs,
                    const ServiceOptions& options,
                    std::shared_ptr<const EngineCore> core,
                    std::unique_ptr<SnapshotStore> store, uint64_t epoch,
                    uint64_t build_index, bool degraded);
  // Scrape-time gauge registration, shared by both constructors; call only
  // once an epoch is published.
  void RegisterGauges();
  // Queues the snapshot write for a freshly published epoch (maintenance
  // priority when a scheduler exists, inline otherwise); no-op without a
  // snapshot_dir.
  void ScheduleSnapshot(uint64_t epoch, uint64_t build_index, bool degraded,
                        std::shared_ptr<const EngineCore> core);
  // Takes the core by shared_ptr so the snapshot store can keep it pinned
  // as the source of its section-reuse cache (delta snapshots).
  void WriteSnapshotNow(uint64_t epoch, uint64_t build_index, bool degraded,
                        std::shared_ptr<const EngineCore> core);

  std::shared_ptr<const AttributeTable> attrs_;  // shared by every epoch
  ServiceOptions options_;
  size_t num_nodes_;

  mutable std::mutex mu_;  // guards the pending state below
  EdgeMap edges_;          // canonical key -> weight
  size_t pending_updates_ = 0;
  size_t snapshot_edges_ = 0;
  uint64_t builds_started_ = 0;
  bool attempt_running_ = false;
  std::optional<PendingRetry> retry_;
  bool shutting_down_ = false;
  RebuildStats stats_;
  std::condition_variable rebuild_done_;

  // RCU-style publication point; readers atomically load, writers
  // atomically store a fresh Epoch. Never null after construction.
  std::atomic<std::shared_ptr<const Epoch>> published_;

  // steady_clock time of the last PublishEpoch, as nanoseconds since the
  // clock's epoch; feeds the epoch-age callback gauge.
  std::atomic<int64_t> last_publish_ns_{0};

  // Scrape-time gauges (epoch number / age, pending updates, index
  // presence), registered at the end of construction and RAII-unregistered
  // before the state they read is destroyed. Two live services emit one
  // sample each under the same name — like two replicas scraping alike.
  std::optional<ScopedCallbackGauge> epoch_gauge_;
  std::optional<ScopedCallbackGauge> epoch_age_gauge_;
  std::optional<ScopedCallbackGauge> pending_gauge_;
  std::optional<ScopedCallbackGauge> index_present_gauge_;

  // Every task this service puts on the scheduler (rebuild attempts,
  // retry-timer callbacks, and snapshot writes) joins this group, so the
  // destructor can wait out stragglers that capture `this`. Set whenever a
  // scheduler is configured.
  std::optional<TaskGroup> sched_group_;

  // Durable snapshots (null when ServiceOptions::snapshot_dir is empty).
  // snapshot_mu_ serializes writes and guards last_snapshot_epoch_ — the
  // newest epoch durably on disk (or restored from disk), so a stale
  // queued write for an already-superseded epoch is skipped, and a
  // recovered epoch is never pointlessly re-written.
  std::unique_ptr<SnapshotStore> snapshot_store_;
  std::mutex snapshot_mu_;
  uint64_t last_snapshot_epoch_ = 0;

  // ---- Incremental-rebuild state (ServiceOptions::delta_rebuild; the
  // vectors stay empty and the caches invalid when the flag is off).
  // dirty_pending_ is guarded by mu_: AddEdge / RemoveEdge mark BOTH
  // endpoints of every APPLIED mutation. Everything below it is owned by
  // the single-flight build ticket (attempt_running_ serializes attempts)
  // and needs no lock: dirty_since_cache_ holds the union of dirty bits
  // relative to the last cache-advancing build — cleared only then; failed
  // and degraded builds leave it in place — and the double-buffered
  // sample / merge-replay caches flip on each successful non-degraded
  // build. delta_cur_ is the live slot; -1 means no base yet (cold
  // construction or warm restart), so the next build runs cold.
  std::vector<char> dirty_pending_;
  std::vector<char> dirty_since_cache_;
  HimorSampleCache sample_cache_[2];
  ClusterReplay cluster_replay_[2];
  int delta_cur_ = -1;
};

}  // namespace cod

#endif  // COD_SERVING_DYNAMIC_SERVICE_H_
