// Deterministic component-atomic graph partitioning for the sharded
// serving tier.
//
// Both strategies assign whole connected components to shards — never
// splitting one — because the shard engines answer component-scoped
// queries (EngineOptions::component_scoped): as long as a component's
// edges land intact on exactly one shard, that shard's answers for the
// component's nodes are bit-identical to any other layout's, which is
// what makes the router's merged results independent of the shard count.
//
// The assignment is a pure function of (graph, attrs, num_shards,
// strategy): components are ordered deterministically and placed with a
// greedy longest-processing-time balance, ties always toward the smaller
// index. No randomness, no iteration-order dependence.

#ifndef COD_SERVING_PARTITION_H_
#define COD_SERVING_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/attributes.h"
#include "graph/graph.h"
#include "serving/service_options.h"

namespace cod {

struct GraphPartition {
  std::vector<uint32_t> shard_of_node;  // per node, in [0, num_shards)
  uint32_t num_shards = 0;
  // Nodes per shard (the balance the greedy placement optimized).
  std::vector<uint32_t> shard_nodes;

  uint32_t ShardOf(NodeId v) const { return shard_of_node[v]; }
};

// Assigns every node to a shard. Fewer components than shards is legal:
// the surplus shards stay empty (their shard graphs have the full node
// set and zero edges) — a connected graph simply cannot be spread wider
// than one shard without changing answers.
GraphPartition PartitionGraph(const Graph& g, const AttributeTable& attrs,
                              uint32_t num_shards, PartitionStrategy strategy);

// The subgraph shard `shard` serves: the FULL node set (so global node
// ids, attribute rows, and per-source RNG streams line up across shards)
// with exactly the edges whose two endpoints the partition assigned to
// `shard`. Component-atomic partitions never produce cross-shard edges,
// so the shard graphs tile the input's edge set.
Graph BuildShardGraph(const Graph& g, const GraphPartition& partition,
                      uint32_t shard);

}  // namespace cod

#endif  // COD_SERVING_PARTITION_H_
