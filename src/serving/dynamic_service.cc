#include "serving/dynamic_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "core/query_workspace.h"
#include "storage/snapshot_store.h"

namespace cod {
namespace {

// Registry handles for the rebuild counters, resolved once. IMPORTANT:
// resolve BEFORE taking mu_ — first use takes the registry lock, and the
// scrape path orders registry lock -> mu_ (callback gauges), so resolving
// under mu_ would invert it.
struct RebuildSites {
  Counter* attempts;
  Counter* failures;
  Counter* retries;
  Counter* published;
  Counter* published_degraded;
  // Delta-mode decision and reuse counters: attempts counts every rebuild
  // that ran under delta_rebuild; fallbacks counts the ones that had a base
  // cache but built cold anyway (dirty fraction over threshold, the
  // "core/delta_rebuild" failpoint, or a failed reuse attempt). The three
  // sample counters partition every RR sample of every delta-mode build by
  // how it was obtained (see HimorDeltaStats).
  Counter* delta_attempts;
  Counter* delta_fallbacks;
  Counter* delta_samples_reused;
  Counter* delta_samples_replayed;
  Counter* delta_samples_resampled;
};

const RebuildSites& RebuildMetrics() {
  static const RebuildSites sites = [] {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    return RebuildSites{
        reg.GetCounter("cod_rebuild_attempts_total"),
        reg.GetCounter("cod_rebuild_failures_total"),
        reg.GetCounter("cod_rebuild_retries_total"),
        reg.GetCounter("cod_epochs_published_total"),
        reg.GetCounter("cod_epochs_degraded_total"),
        reg.GetCounter("cod_rebuild_delta_attempts_total"),
        reg.GetCounter("cod_rebuild_delta_fallbacks_total"),
        reg.GetCounter("cod_rebuild_delta_samples_reused_total"),
        reg.GetCounter("cod_rebuild_delta_samples_replayed_total"),
        reg.GetCounter("cod_rebuild_delta_samples_resampled_total")};
  }();
  return sites;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Reusable per-thread workspace for the single-query convenience API:
// constructing a QueryWorkspace allocates graph-sized evaluator scratch,
// far too expensive to pay per query (the old behavior). Rebinding every
// call is cheap — it re-reads the model pointer and theta, keeping the
// buffers — and makes the cache immune to epoch/service ABA (a new core
// allocated at a freed core's address would pass a pointer-equality check
// with stale parameters). The workspace holds no reference to any core
// after a query returns, so thread-exit destruction is always safe.
QueryWorkspace& TlsWorkspaceFor(const EngineCore& core) {
  thread_local std::unique_ptr<QueryWorkspace> ws;
  if (ws == nullptr) {
    ws = std::make_unique<QueryWorkspace>(core, /*seed=*/0);
  } else {
    ws->Rebind(core);
  }
  return *ws;
}

}  // namespace

uint64_t DynamicCodService::EdgeKey(NodeId u, NodeId v, size_t n) {
  if (u > v) std::swap(u, v);
  return static_cast<uint64_t>(u) * n + v;
}

DynamicCodService::DynamicCodService(Graph initial_graph, AttributeTable attrs,
                                     const ServiceOptions& options)
    : DynamicCodService(
          std::move(initial_graph),
          std::make_shared<const AttributeTable>(std::move(attrs)), options) {}

DynamicCodService::DynamicCodService(
    Graph initial_graph, std::shared_ptr<const AttributeTable> attrs,
    const ServiceOptions& options)
    : attrs_(std::move(attrs)),
      options_(options),
      num_nodes_(initial_graph.NumNodes()) {
  COD_CHECK(options_.Validate().ok());
  COD_CHECK_EQ(num_nodes_, attrs_->NumNodes());
  if (options_.scheduler != nullptr) sched_group_.emplace(*options_.scheduler);
  if (!options_.snapshot_dir.empty()) {
    snapshot_store_ = std::make_unique<SnapshotStore>(
        SnapshotStore::Options{options_.snapshot_dir,
                               options_.snapshots_keep});
  }
  for (EdgeId e = 0; e < initial_graph.NumEdges(); ++e) {
    const auto [u, v] = initial_graph.Endpoints(e);
    edges_[EdgeKey(u, v, num_nodes_)] = initial_graph.Weight(e);
  }
  if (options_.delta_rebuild) {
    dirty_pending_.assign(num_nodes_, 0);
    dirty_since_cache_.assign(num_nodes_, 0);
  }
  // The first epoch is always built synchronously; with no previous epoch
  // to fall back to, a failure here is fatal (arm rebuild failpoints only
  // after construction).
  COD_CHECK(Refresh().ok());
  RegisterGauges();
}

DynamicCodService::DynamicCodService(
    RecoveredTag, std::shared_ptr<const AttributeTable> attrs,
    const ServiceOptions& options, std::shared_ptr<const EngineCore> core,
    std::unique_ptr<SnapshotStore> store, uint64_t epoch,
    uint64_t build_index, bool degraded)
    : attrs_(std::move(attrs)),
      options_(options),
      num_nodes_(core->graph().NumNodes()),
      snapshot_store_(std::move(store)),
      last_snapshot_epoch_(epoch) {
  COD_CHECK(options_.Validate().ok());
  COD_CHECK_EQ(num_nodes_, attrs_->NumNodes());
  if (options_.scheduler != nullptr) sched_group_.emplace(*options_.scheduler);
  const Graph& g = core->graph();
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    edges_[EdgeKey(u, v, num_nodes_)] = g.Weight(e);
  }
  snapshot_edges_ = edges_.size();
  if (options_.delta_rebuild) {
    // The reuse caches are not persisted (delta_cur_ stays -1), so the
    // first rebuild after a warm restart runs cold — bit-identity holds
    // regardless, because the delta schedule is epoch-independent.
    dirty_pending_.assign(num_nodes_, 0);
    dirty_since_cache_.assign(num_nodes_, 0);
  }
  // Rebuild tickets continue AFTER the snapshot's: replaying the same
  // update sequence against the recovered service draws the same per-ticket
  // seed streams the original would have.
  builds_started_ = build_index + 1;
  auto first = std::make_shared<Epoch>();
  first->epoch = epoch;
  first->degraded = degraded;
  first->core = std::move(core);
  published_.store(std::move(first));
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  RegisterGauges();
}

void DynamicCodService::RegisterGauges() {
  // Register the scrape-time gauges only once the first epoch is live, so a
  // scrape can never observe a half-constructed service.
  epoch_gauge_.emplace("cod_service_epoch", [this] {
    return static_cast<double>(published_.load()->epoch);
  });
  epoch_age_gauge_.emplace("cod_service_epoch_age_seconds", [this] {
    return static_cast<double>(
               SteadyNowNs() -
               last_publish_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  });
  pending_gauge_.emplace("cod_service_pending_updates", [this] {
    return static_cast<double>(pending_updates());
  });
  index_present_gauge_.emplace("cod_service_index_present", [this] {
    return published_.load()->core->index_present() ? 1.0 : 0.0;
  });
}

Result<std::unique_ptr<DynamicCodService>> DynamicCodService::Recover(
    const ServiceOptions& options) {
  COD_CHECK(options.Validate().ok());
  COD_CHECK(!options.snapshot_dir.empty());
  auto store = std::make_unique<SnapshotStore>(
      SnapshotStore::Options{options.snapshot_dir, options.snapshots_keep});
  Result<SnapshotStore::LoadedSnapshot> loaded = store->LoadNewest();
  if (!loaded.ok()) return loaded.status();
  DecodedEpochSnapshot& snap = loaded->snapshot;
  const EngineOptions& eng = options.engine;
  // The options fingerprint is the primary compatibility gate (it also
  // covers the sharding layout and the attribute transform); the
  // field-by-field check below stays as defense in depth for the fields
  // the container stores explicitly.
  if (snap.meta.options_fingerprint != options.Fingerprint()) {
    return Status::FailedPrecondition(
        "snapshot " + loaded->path +
        " was written under a different options fingerprint (engine "
        "parameters, seed, or sharding layout); restoring it would change "
        "answers");
  }
  if (snap.meta.seed != options.seed || snap.meta.engine_k != eng.k ||
      snap.meta.engine_theta != eng.theta ||
      snap.meta.himor_max_rank != eng.himor_max_rank ||
      snap.meta.diffusion != static_cast<uint8_t>(eng.diffusion)) {
    return Status::FailedPrecondition(
        "snapshot " + loaded->path +
        " was written under different service options (seed or engine "
        "parameters); restoring it would change answers");
  }
  auto graph = std::make_shared<const Graph>(std::move(snap.graph));
  auto attrs =
      std::make_shared<const AttributeTable>(std::move(snap.attributes));
  Result<std::unique_ptr<EngineCore>> core = EngineCore::FromPrebuilt(
      graph, attrs, eng, std::move(*snap.hierarchy), std::move(snap.himor),
      std::move(snap.sketch), snap.meta.degraded);
  if (!core.ok()) return core.status();
  return std::unique_ptr<DynamicCodService>(new DynamicCodService(
      RecoveredTag{}, std::move(attrs), options,
      std::shared_ptr<const EngineCore>(std::move(core).value()),
      std::move(store), snap.meta.epoch, snap.meta.build_index,
      snap.meta.degraded));
}

DynamicCodService::~DynamicCodService() {
  uint64_t timer_to_cancel = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    if (retry_.has_value()) {
      // Give up the scheduled retry: the last good epoch stands and the
      // captured pending count is restored, matching a retry-cap give-up.
      pending_updates_ += retry_->captured_pending;
      timer_to_cancel = retry_->timer_id;
      retry_.reset();
    }
    // An EXECUTING attempt cannot be cancelled — wait it out (it observes
    // shutting_down_ on failure and will not schedule a new retry).
    rebuild_done_.wait(lock, [this] { return !attempt_running_; });
  }
  if (timer_to_cancel != 0) {
    options_.scheduler->CancelTimer(timer_to_cancel);
  }
  // Wait out every task still in flight that captures `this` — e.g. a
  // queued OnRetryTimer callback whose retry was just cancelled above.
  if (sched_group_.has_value()) sched_group_->Wait();
}

bool DynamicCodService::AddEdge(NodeId u, NodeId v, double weight) {
  COD_CHECK(u < num_nodes_);
  COD_CHECK(v < num_nodes_);
  if (u == v) return false;
  std::lock_guard<std::mutex> lock(mu_);
  edges_[EdgeKey(u, v, num_nodes_)] = weight;
  ++pending_updates_;
  if (!dirty_pending_.empty()) {
    // Both endpoints: adding, removing, or reweighting (u, v) changes the
    // incident edge sets — and hence the RR sampling streams — of u AND v.
    dirty_pending_[u] = 1;
    dirty_pending_[v] = 1;
  }
  return true;
}

bool DynamicCodService::RemoveEdge(NodeId u, NodeId v) {
  COD_CHECK(u < num_nodes_);
  COD_CHECK(v < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  if (edges_.erase(EdgeKey(u, v, num_nodes_)) == 0) return false;
  ++pending_updates_;
  if (!dirty_pending_.empty()) {
    dirty_pending_[u] = 1;
    dirty_pending_[v] = 1;
  }
  return true;
}

void DynamicCodService::FoldDirtyLocked() {
  for (size_t v = 0; v < dirty_pending_.size(); ++v) {
    if (dirty_pending_[v] != 0) {
      dirty_since_cache_[v] = 1;
      dirty_pending_[v] = 0;
    }
  }
}

size_t DynamicCodService::pending_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_updates_;
}

size_t DynamicCodService::NumEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

RebuildStats DynamicCodService::rebuild_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool DynamicCodService::DriftOverThresholdLocked() const {
  const double drift =
      snapshot_edges_ == 0
          ? (pending_updates_ > 0 ? 1.0 : 0.0)
          : static_cast<double>(pending_updates_) /
                static_cast<double>(snapshot_edges_);
  return pending_updates_ > 0 && drift > options_.rebuild_threshold;
}

bool DynamicCodService::RefreshDue() const {
  std::lock_guard<std::mutex> lock(mu_);
  return DriftOverThresholdLocked();
}

bool DynamicCodService::RetryScheduled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_.has_value();
}

Result<DynamicCodService::EpochBuild> DynamicCodService::BuildEpochCore(
    const EdgeMap& edges, uint64_t build_index) {
  if (COD_FAILPOINT("dynamic_service/rebuild")) {
    return Status::IoError("failpoint dynamic_service/rebuild armed");
  }
  GraphBuilder builder(num_nodes_);
  for (const auto& [key, weight] : edges) {
    builder.AddEdge(static_cast<NodeId>(key / num_nodes_),
                    static_cast<NodeId>(key % num_nodes_), weight);
  }
  auto graph = std::make_shared<const Graph>(std::move(builder).Build());
  if (options_.delta_rebuild) {
    // The delta schedule ignores the ticket number by design (see
    // BuildEpochCoreDelta); build_index still matters for publication
    // bookkeeping, which the callers own.
    return BuildEpochCoreDelta(std::move(graph));
  }
  auto core = std::make_shared<EngineCore>(graph, attrs_, options_.engine);
  // Per-ticket deterministic sampling stream (failed tickets are consumed).
  Rng rng(options_.seed + build_index);
  const Budget budget{options_.rebuild_budget_seconds > 0.0
                          ? Deadline::After(options_.rebuild_budget_seconds)
                          : Deadline::Infinite()};
  Status himor = core->TryBuildHimor(rng, budget);
  if (!himor.ok()) {
    if (!options_.publish_without_index) return himor;
    // Degraded publication: the graph and hierarchy built fine, only the
    // index ran over budget (or hit "himor/build"). Fresh answers without
    // index acceleration beat fast answers over a stale graph — publish
    // index-absent and let a later rebuild restore the index.
    core->MarkIndexAbsent();
    return EpochBuild{std::shared_ptr<const EngineCore>(std::move(core)),
                      /*degraded=*/true};
  }
  return EpochBuild{std::shared_ptr<const EngineCore>(std::move(core)),
                    /*degraded=*/false};
}

Result<DynamicCodService::EpochBuild> DynamicCodService::BuildEpochCoreDelta(
    std::shared_ptr<const Graph> graph) {
  const RebuildSites& rm = RebuildMetrics();
  rm.delta_attempts->Increment();

  const int cur = delta_cur_;
  const int nxt = cur < 0 ? 0 : 1 - cur;

  // Decide reuse vs cold. A cold delta build runs the exact same
  // counter-seeded schedule with no previous cache, so both paths answer
  // bit-identically — the choice is latency-only. Fallbacks count only
  // decisions where a base existed but was not used; the very first build
  // (no base at all) is just a cold build.
  bool use_prev =
      cur >= 0 && sample_cache_[cur].valid && cluster_replay_[cur].valid;
  if (use_prev) {
    if (COD_FAILPOINT("core/delta_rebuild")) {
      use_prev = false;
      rm.delta_fallbacks->Increment();
    } else {
      // A sample is invalidated when its RR set touches ANY dirty vertex,
      // so vertex dirtiness amplifies by the (heavy-tailed) RR membership
      // distribution and no closed-form estimate tracks it. Count the
      // invalidated samples exactly instead: one early-exit pass over the
      // cached RR slabs costs ~1% of a rebuild and makes the fallback a
      // deterministic function of published state, so both replicas of an
      // epoch make the same choice.
      const RrSlabPool& rr = sample_cache_[cur].rr;
      const size_t num_samples = rr.NumSamples();
      size_t dirty_samples = 0;
      for (size_t i = 0; i < num_samples; ++i) {
        const RrSlabPool::View view = rr.Sample(i);
        for (uint32_t k = 0; k < view.node_count; ++k) {
          if (dirty_since_cache_[view.nodes[k]] != 0) {
            ++dirty_samples;
            break;
          }
        }
      }
      if (static_cast<double>(dirty_samples) >
          options_.delta_max_dirty_fraction *
              static_cast<double>(num_samples)) {
        use_prev = false;
        rm.delta_fallbacks->Increment();
      }
    }
  }

  const Budget budget{options_.rebuild_budget_seconds > 0.0
                          ? Deadline::After(options_.rebuild_budget_seconds)
                          : Deadline::Infinite()};
  for (;;) {
    const std::vector<char>* dirty = use_prev ? &dirty_since_cache_ : nullptr;
    const ClusterReplay* replay_prev =
        use_prev ? &cluster_replay_[cur] : nullptr;
    HimorSampleCache* cache_prev = use_prev ? &sample_cache_[cur] : nullptr;

    // Clustering runs unbudgeted, matching the cold EngineCore constructor;
    // the rebuild budget bounds the HIMOR build, which dominates.
    Result<Dendrogram> hierarchy =
        AgglomerativeClusterDelta(*graph, AgglomerativeOptions{}, Budget{},
                                  dirty, replay_prev, &cluster_replay_[nxt]);
    COD_CHECK(hierarchy.ok());  // an unlimited budget never aborts
    Result<std::unique_ptr<EngineCore>> made = EngineCore::FromPrebuilt(
        graph, attrs_, options_.engine, std::move(hierarchy).value(),
        /*himor=*/std::nullopt, /*sketch=*/std::nullopt,
        /*index_absent_degraded=*/false);
    if (!made.ok()) return made.status();
    std::shared_ptr<EngineCore> core(std::move(made).value());

    // Constant seed: the delta schedule derives every sample's stream from
    // (seed, source, j) alone — NOT from the rebuild ticket — so cached RR
    // bytes equal what resampling would produce this epoch.
    HimorDeltaStats dstats;
    const Status himor =
        core->TryBuildHimorDelta(options_.seed, budget, dirty, cache_prev,
                                 &sample_cache_[nxt], &dstats);
    if (himor.ok()) {
      rm.delta_samples_reused->Increment(dstats.samples_reused);
      rm.delta_samples_replayed->Increment(dstats.samples_replayed);
      rm.delta_samples_resampled->Increment(dstats.samples_resampled);
      delta_cur_ = nxt;
      std::fill(dirty_since_cache_.begin(), dirty_since_cache_.end(), 0);
      return EpochBuild{std::shared_ptr<const EngineCore>(std::move(core)),
                        /*degraded=*/false};
    }
    const bool budget_failure = himor.code() == StatusCode::kTimeout ||
                                himor.code() == StatusCode::kCancelled;
    if (use_prev && !budget_failure) {
      // Defensive half of the delta contract: a reuse attempt that fails
      // for any non-budget reason retries once as a full cold build before
      // the normal failure handling applies.
      use_prev = false;
      rm.delta_fallbacks->Increment();
      continue;
    }
    if (!options_.publish_without_index) return himor;
    // Degraded publication, as in the non-delta path. The caches do NOT
    // advance: the next rebuild deltas from the last fully indexed epoch,
    // with dirty_since_cache_ still covering everything since then.
    core->MarkIndexAbsent();
    return EpochBuild{std::shared_ptr<const EngineCore>(std::move(core)),
                      /*degraded=*/true};
  }
}

void DynamicCodService::PublishEpoch(std::shared_ptr<const EngineCore> core,
                                     bool degraded, uint64_t build_index) {
  const std::shared_ptr<const Epoch> prev = published_.load();
  auto next = std::make_shared<Epoch>();
  next->epoch = (prev == nullptr ? 0 : prev->epoch) + 1;
  next->degraded = degraded;
  next->core = core;
  const uint64_t epoch = next->epoch;
  published_.store(std::move(next));
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Queries are already being served from the new epoch; durability runs
  // behind publication, never in front of it.
  ScheduleSnapshot(epoch, build_index, degraded, std::move(core));
}

void DynamicCodService::ScheduleSnapshot(uint64_t epoch, uint64_t build_index,
                                         bool degraded,
                                         std::shared_ptr<const EngineCore>
                                             core) {
  if (snapshot_store_ == nullptr) return;
  if (options_.scheduler != nullptr) {
    // Maintenance priority: a snapshot must never delay interactive queries
    // or the next rebuild. The task joins sched_group_, so the destructor
    // waits it out; the captured core shared_ptr keeps the epoch alive even
    // if a newer epoch retires it meanwhile.
    options_.scheduler->Submit(
        TaskPriority::kMaintenance, *sched_group_,
        [this, epoch, build_index, degraded, core = std::move(core)]() mutable {
          WriteSnapshotNow(epoch, build_index, degraded, std::move(core));
        });
    return;
  }
  WriteSnapshotNow(epoch, build_index, degraded, std::move(core));
}

void DynamicCodService::WriteSnapshotNow(
    uint64_t epoch, uint64_t build_index, bool degraded,
    std::shared_ptr<const EngineCore> core) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  // A queued write for an epoch the disk already covers (a newer write ran
  // first, or the epoch was itself restored from disk) is a no-op. A FAILED
  // write is not retried until the next publish — the snapshot is a restart
  // accelerator, and cod_snapshot_write_failures_total records the gap.
  if (epoch <= last_snapshot_epoch_) return;
  EpochSnapshotMeta meta;
  meta.epoch = epoch;
  meta.build_index = build_index;
  meta.seed = options_.seed;
  meta.degraded = degraded;
  meta.options_fingerprint = options_.Fingerprint();
  if (snapshot_store_->Write(meta, std::move(core)).ok()) {
    last_snapshot_epoch_ = epoch;
  }
}

Status DynamicCodService::Refresh() {
  const RebuildSites& rm = RebuildMetrics();  // resolve before taking mu_
  EdgeMap edges;
  uint64_t build_index = 0;
  size_t captured_pending = 0;
  std::unique_lock<std::mutex> lock(mu_);
  // A SCHEDULED retry is superseded by this explicit refresh: the edge set
  // we capture below already contains everything the retry would have
  // built, so absorb its pending count and cancel it (timer included). An
  // EXECUTING attempt is waited out as before (it either publishes or
  // schedules a retry we then absorb).
  size_t absorbed = 0;
  for (;;) {
    if (retry_.has_value()) {
      absorbed += retry_->captured_pending;
      const uint64_t timer_id = retry_->timer_id;
      retry_.reset();
      if (timer_id != 0) options_.scheduler->CancelTimer(timer_id);
      break;
    }
    if (!attempt_running_) break;
    rebuild_done_.wait(lock);
  }
  attempt_running_ = true;
  edges = edges_;
  build_index = builds_started_++;
  captured_pending = pending_updates_ + absorbed;
  snapshot_edges_ = edges_.size();
  pending_updates_ = 0;
  FoldDirtyLocked();
  ++stats_.attempts;
  rm.attempts->Increment();
  lock.unlock();

  Result<EpochBuild> built = BuildEpochCore(edges, build_index);
  if (built.ok()) {
    PublishEpoch(built->core, built->degraded, build_index);
  }

  // Notify under the lock: a waiter may destroy the service (and this cv)
  // as soon as it observes the flag cleared.
  lock.lock();
  if (built.ok()) {
    ++stats_.published;
    rm.published->Increment();
    if (built->degraded) {
      ++stats_.published_degraded;
      rm.published_degraded->Increment();
    }
  } else {
    ++stats_.failures;
    rm.failures->Increment();
    stats_.last_error = built.status();
    // Restore the absorbed pending count so the drift threshold (or the
    // caller) can trigger another attempt; updates that arrived during the
    // failed build are already counted on top.
    pending_updates_ += captured_pending;
  }
  attempt_running_ = false;
  rebuild_done_.notify_all();
  lock.unlock();
  return built.status();
}

bool DynamicCodService::RefreshAsync() {
  COD_CHECK(options_.async_rebuild);
  EdgeMap edges;
  uint64_t build_index = 0;
  size_t captured_pending = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (RebuildInFlightLocked()) return false;
    attempt_running_ = true;
    edges = edges_;
    build_index = builds_started_++;
    // The epoch being built absorbs everything pending as of this capture;
    // updates arriving during the build count against the NEXT epoch. A
    // failed build restores the captured count so drift can re-trigger.
    captured_pending = pending_updates_;
    snapshot_edges_ = edges_.size();
    pending_updates_ = 0;
    FoldDirtyLocked();
  }
  options_.scheduler->Submit(
      TaskPriority::kRebuild, *sched_group_,
      [this, edges = std::move(edges), build_index, captured_pending]() mutable {
        RunRebuildAttempt(std::move(edges), build_index, captured_pending,
                          /*attempt=*/0, options_.rebuild_backoff_initial_ms);
      });
  return true;
}

void DynamicCodService::RunRebuildAttempt(EdgeMap edges, uint64_t build_index,
                                          size_t captured_pending,
                                          uint32_t attempt,
                                          uint32_t backoff_ms) {
  const RebuildSites& rm = RebuildMetrics();  // resolve before taking mu_
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.attempts;
    rm.attempts->Increment();
  }
  Result<EpochBuild> built = BuildEpochCore(edges, build_index);
  if (built.ok()) {
    PublishEpoch(built->core, built->degraded, build_index);
    // Notify under the lock — see Refresh().
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.published;
    rm.published->Increment();
    if (built->degraded) {
      ++stats_.published_degraded;
      rm.published_degraded->Increment();
    }
    attempt_running_ = false;
    rebuild_done_.notify_all();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.failures;
  rm.failures->Increment();
  stats_.last_error = built.status();
  if (attempt >= options_.max_rebuild_retries || shutting_down_) {
    // Give up: the last good epoch keeps serving; restoring the captured
    // pending count lets the drift threshold schedule a fresh ticket.
    pending_updates_ += captured_pending;
    attempt_running_ = false;
    rebuild_done_.notify_all();
    return;
  }
  ++stats_.retries;
  rm.retries->Increment();
  // Schedule the retry instead of sleeping through the backoff: this worker
  // returns to the scheduler NOW. The ticket stays in flight (retry_ set)
  // so RefreshAsync dedupes and waiters wait, but no thread is occupied
  // until the scheduler timer — or the next query's MaybeRefresh — observes
  // retry_after.
  PendingRetry r;
  r.edges = std::move(edges);
  r.build_index = build_index;
  r.captured_pending = captured_pending;
  r.attempt = attempt + 1;
  r.next_backoff_ms = std::min(options_.rebuild_backoff_max_ms,
                               backoff_ms * 2);
  r.retry_after = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(backoff_ms);
  // Arm the scheduler timer before publishing retry_: the callback re-reads
  // state under mu_ and no-ops if the retry was absorbed or already kicked.
  r.timer_id = options_.scheduler->ScheduleAt(
      r.retry_after, TaskPriority::kMaintenance, *sched_group_,
      [this] { OnRetryTimer(); });
  retry_ = std::move(r);
  attempt_running_ = false;
  // Wake rebuild_done_ waiters so a blocked Refresh() can absorb the retry
  // instead of waiting out the backoff.
  rebuild_done_.notify_all();
}

void DynamicCodService::SubmitRetryLocked() {
  PendingRetry r = std::move(*retry_);
  retry_.reset();
  attempt_running_ = true;
  // If the timer has not fired yet, cancel it (no-op when it already fired
  // — its queued callback will find retry_ empty and return). Taking the
  // scheduler's timer lock under mu_ is safe: timer callbacks run as
  // ordinary tasks and never hold scheduler locks while taking mu_.
  options_.scheduler->CancelTimer(r.timer_id);
  options_.scheduler->Submit(
      TaskPriority::kRebuild, *sched_group_,
      [this, r = std::move(r)]() mutable {
        RunRebuildAttempt(std::move(r.edges), r.build_index,
                          r.captured_pending, r.attempt, r.next_backoff_ms);
      });
}

void DynamicCodService::OnRetryTimer() {
  std::lock_guard<std::mutex> lock(mu_);
  // The retry may be gone (absorbed by Refresh, kicked by MaybeRefresh,
  // shutdown) or replaced by a LATER one with its own timer; only a due
  // retry gets submitted here.
  if (shutting_down_ || !retry_.has_value()) return;
  if (std::chrono::steady_clock::now() < retry_->retry_after) return;
  SubmitRetryLocked();
}

void DynamicCodService::WaitForRebuild() {
  std::unique_lock<std::mutex> lock(mu_);
  rebuild_done_.wait(lock, [this] { return !RebuildInFlightLocked(); });
}

DynamicCodService::EpochSnapshot DynamicCodService::Snapshot() const {
  const std::shared_ptr<const Epoch> epoch = published_.load();
  return EpochSnapshot{epoch->core, epoch->epoch, epoch->degraded};
}

void DynamicCodService::MaybeRefresh() {
  bool over_threshold = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Kick a due retry: queries usually arrive far more often than the
    // timer wakes, so this is the low-latency path back from backoff.
    if (retry_.has_value() &&
        std::chrono::steady_clock::now() >= retry_->retry_after) {
      SubmitRetryLocked();
    }
    over_threshold = DriftOverThresholdLocked();
  }
  if (!over_threshold) return;
  if (options_.async_rebuild) {
    RefreshAsync();  // keep serving the stale epoch; swap when ready
  }
  // Sync mode: queries NEVER rebuild inline — bounded latency beats bounded
  // staleness. The owner polls RefreshDue() and calls Refresh().
}

CodResult DynamicCodService::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                                       Rng& rng) {
  MaybeRefresh();  // may SCHEDULE a rebuild; never runs one inline
  const EpochSnapshot snap = Snapshot();
  QueryWorkspace& ws = TlsWorkspaceFor(*snap.core);
  ws.rng() = rng;
  const CodResult result = snap.core->QueryCodL(q, attr, k, ws);
  rng = ws.rng();
  return result;
}

CodResult DynamicCodService::QueryCodU(NodeId q, uint32_t k, Rng& rng) {
  MaybeRefresh();  // may SCHEDULE a rebuild; never runs one inline
  const EpochSnapshot snap = Snapshot();
  QueryWorkspace& ws = TlsWorkspaceFor(*snap.core);
  ws.rng() = rng;
  const CodResult result = snap.core->QueryCodU(q, k, ws);
  rng = ws.rng();
  return result;
}

std::vector<CodResult> DynamicCodService::QueryBatch(
    std::span<const QuerySpec> specs, TaskScheduler& scheduler,
    uint64_t batch_seed, const BatchOptions& options,
    BatchStats* stats) const {
  const EpochSnapshot snap = Snapshot();  // keeps the epoch alive throughout
  return RunQueryBatch(*snap.core, specs, scheduler, batch_seed, options,
                       stats);
}

}  // namespace cod
