// CodServiceInterface: the one API every COD serving implementation
// speaks. Callers — benches, examples, tests, anything embedding the
// serving tier — program against this interface plus ServiceOptions and
// never against a concrete service's layout, so the same harness drives a
// mono DynamicCodService and an N-shard ShardedCodService unchanged.
//
// The factories at the bottom pick the implementation from
// ServiceOptions::num_shards: 1 = one engine over the whole graph
// (DynamicCodService), >= 2 = a deterministic scatter/gather router over
// component-scoped shard engines (ShardedCodService). Both publish epochs
// RCU-style, never rebuild on a query path, and degrade instead of
// failing when an index build or a shard deadline falls over.

#ifndef COD_SERVING_SERVICE_INTERFACE_H_
#define COD_SERVING_SERVICE_INTERFACE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/query_batch.h"
#include "serving/service_options.h"

namespace cod {

// Cumulative rebuild bookkeeping, inspectable at any time (test /
// monitoring hook). attempts counts every epoch-build call including
// retries; published counts successful epoch swaps (published_degraded of
// which were index-absent). A sharded service reports the field-wise sum
// over its shards.
struct RebuildStats {
  uint64_t attempts = 0;
  uint64_t failures = 0;
  uint64_t retries = 0;
  uint64_t published = 0;
  uint64_t published_degraded = 0;
  Status last_error;  // most recent failure; Ok() if none ever failed
};

class CodServiceInterface {
 public:
  virtual ~CodServiceInterface() = default;

  // ---- Updates (O(1), no rebuild). Duplicate inserts overwrite weight;
  // removing an absent edge returns false. Self-loops are rejected. A
  // sharded service additionally rejects edges that would CROSS shards
  // (returns false, counts cod_shard_cross_edge_rejected_total) — the
  // partition is fixed at construction. Thread-safe against queries and
  // each other. ----
  virtual bool AddEdge(NodeId u, NodeId v, double weight = 1.0) = 0;
  virtual bool RemoveEdge(NodeId u, NodeId v) = 0;

  virtual size_t pending_updates() const = 0;
  // Mono: the published epoch number. Sharded: the MINIMUM epoch over
  // shards — the freshness floor every answer is guaranteed to meet.
  virtual uint64_t epoch() const = 0;
  // True when the current epoch serves index-absent (sharded: ANY shard).
  virtual bool epoch_degraded() const = 0;
  virtual size_t NumEdges() const = 0;
  virtual RebuildStats rebuild_stats() const = 0;

  // True when accumulated drift has crossed rebuild_threshold (sharded:
  // on any shard) — in sync mode the owner polls this and calls Refresh()
  // (queries never rebuild inline).
  virtual bool RefreshDue() const = 0;

  // Synchronously rebuilds and publishes before returning. A sharded
  // service refreshes EVERY shard and keeps going past a failed one (its
  // old epoch keeps serving), returning the first error encountered.
  virtual Status Refresh() = 0;
  // Schedules rebuilds on the configured scheduler and returns
  // immediately; false if nothing new was scheduled (every engine already
  // has a rebuild in flight). Requires ServiceOptions::async_rebuild.
  virtual bool RefreshAsync() = 0;
  // Blocks until no background rebuild is in flight on any engine,
  // waiting through scheduled retries (test/shutdown hook).
  virtual void WaitForRebuild() = 0;

  // Single-query convenience: serves from the current epoch of the engine
  // that owns q (snapshot-and-serve; never rebuilds inline). `rng`
  // advances exactly as if the query ran alone against that engine.
  virtual CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                              Rng& rng) = 0;
  virtual CodResult QueryCodU(NodeId q, uint32_t k, Rng& rng) = 0;

  // Fans a workload across `scheduler` against ONE snapshot per engine,
  // gathered back into spec order. Deterministic given (epoch contents,
  // specs, batch_seed, effective options): query i always runs with
  // BatchQuerySeed(batch_seed, i) keyed by its position in `specs`,
  // regardless of shard layout, chunking, or worker count. `stats`
  // (ignored when null) receives the batch's aggregate tallies, including
  // BatchStats::shard_missed for deadline-missed shards.
  virtual std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                            TaskScheduler& scheduler,
                                            uint64_t batch_seed,
                                            const BatchOptions& options,
                                            BatchStats* stats) const = 0;

  // Convenience forms (non-virtual): default options, no stats.
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    TaskScheduler& scheduler,
                                    uint64_t batch_seed) const {
    return QueryBatch(specs, scheduler, batch_seed, BatchOptions{}, nullptr);
  }
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    TaskScheduler& scheduler,
                                    uint64_t batch_seed,
                                    const BatchOptions& options) const {
    return QueryBatch(specs, scheduler, batch_seed, options, nullptr);
  }
};

// Builds the serving implementation ServiceOptions selects: a
// DynamicCodService when num_shards == 1, a ShardedCodService otherwise.
// CHECK-fails on invalid options (call options.Validate() first to handle
// configuration errors gracefully) and on a first-epoch build failure.
std::unique_ptr<CodServiceInterface> MakeCodService(
    Graph initial_graph, AttributeTable attrs, const ServiceOptions& options);

// Warm restart of whichever implementation `options` selects, from the
// snapshot layout under options.snapshot_dir. `cold_graph` / `cold_attrs`
// are the cold-start fallback source of truth: a mono service uses them
// only when NO usable snapshot exists (kNotFound); a sharded service
// additionally cold-rebuilds any INDIVIDUAL shard whose snapshots are
// missing or exhausted by corruption, while warm-restoring the rest. A
// snapshot whose options fingerprint disagrees with `options` fails with
// kFailedPrecondition — restoring it would change answers.
Result<std::unique_ptr<CodServiceInterface>> RecoverCodService(
    const ServiceOptions& options, Graph cold_graph, AttributeTable cold_attrs);

}  // namespace cod

#endif  // COD_SERVING_SERVICE_INTERFACE_H_
