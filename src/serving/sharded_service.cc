#include "serving/sharded_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/metrics.h"

namespace cod {
namespace {

Counter& CrossEdgeRejected() {
  static Counter* counter = MetricsRegistry::Instance().GetCounter(
      "cod_shard_cross_edge_rejected_total");
  return *counter;
}

}  // namespace

std::string ShardedCodService::ShardSnapshotDir(const std::string& base,
                                                uint32_t shard) {
  if (base.empty()) return "";
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "shard-%04u", shard);
  return base + "/" + suffix;
}

ServiceOptions ShardedCodService::ShardOptions(const ServiceOptions& base,
                                               uint32_t shard) {
  ServiceOptions opts = base;
  // Component scoping is what detaches a query's answer from the shard
  // layout; the fingerprint keeps the SHARDED layout (num_shards,
  // partitioner), so every shard's snapshots carry the same fingerprint
  // and a mono snapshot can never warm-restore into a shard.
  opts.engine.component_scoped = true;
  opts.snapshot_dir = ShardSnapshotDir(base.snapshot_dir, shard);
  return opts;
}

ShardedCodService::ShardedCodService(
    std::shared_ptr<const AttributeTable> attrs, const ServiceOptions& options,
    GraphPartition partition,
    std::vector<std::unique_ptr<DynamicCodService>> shards)
    : attrs_(std::move(attrs)),
      options_(options),
      partition_(std::move(partition)),
      shards_(std::move(shards)) {
  COD_CHECK_EQ(shards_.size(), partition_.num_shards);
}

ShardedCodService::ShardedCodService(Graph initial_graph, AttributeTable attrs,
                                     const ServiceOptions& options)
    : ShardedCodService(
          std::make_shared<const AttributeTable>(std::move(attrs)), options,
          GraphPartition{}, {}) {
  COD_CHECK(options_.Validate().ok());
  COD_CHECK_EQ(initial_graph.NumNodes(), attrs_->NumNodes());
  partition_ = PartitionGraph(initial_graph, *attrs_, options_.num_shards,
                              options_.partitioner);
  shards_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<DynamicCodService>(
        BuildShardGraph(initial_graph, partition_, s), attrs_,
        ShardOptions(options_, s)));
  }
}

Result<std::unique_ptr<ShardedCodService>> ShardedCodService::Recover(
    const ServiceOptions& options, Graph cold_graph,
    AttributeTable cold_attrs) {
  COD_RETURN_IF_ERROR(options.Validate());
  COD_CHECK(!options.snapshot_dir.empty());
  auto attrs = std::make_shared<const AttributeTable>(std::move(cold_attrs));
  COD_CHECK_EQ(cold_graph.NumNodes(), attrs->NumNodes());
  GraphPartition partition = PartitionGraph(
      cold_graph, *attrs, options.num_shards, options.partitioner);
  std::vector<std::unique_ptr<DynamicCodService>> shards;
  shards.reserve(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    const ServiceOptions shard_opts = ShardOptions(options, s);
    Result<std::unique_ptr<DynamicCodService>> recovered =
        DynamicCodService::Recover(shard_opts);
    if (recovered.ok()) {
      shards.push_back(std::move(recovered).value());
      continue;
    }
    if (recovered.status().code() == StatusCode::kNotFound) {
      // This shard has no usable snapshot (never written, or every file
      // quarantined as corrupt): cold-rebuild JUST this shard from its
      // partition slice. The others keep their warm epochs — per-shard
      // epoch streams make the mixed restart consistent.
      shards.push_back(std::make_unique<DynamicCodService>(
          BuildShardGraph(cold_graph, partition, s), attrs, shard_opts));
      continue;
    }
    // Fingerprint mismatch or an I/O failure: refuse the whole recovery —
    // the snapshots on disk do not belong to this configuration.
    return recovered.status();
  }
  return std::unique_ptr<ShardedCodService>(new ShardedCodService(
      std::move(attrs), options, std::move(partition), std::move(shards)));
}

bool ShardedCodService::AddEdge(NodeId u, NodeId v, double weight) {
  COD_CHECK(u < partition_.shard_of_node.size());
  COD_CHECK(v < partition_.shard_of_node.size());
  if (u == v) return false;
  if (ShardOf(u) != ShardOf(v)) {
    CrossEdgeRejected().Increment();
    return false;
  }
  return shards_[ShardOf(u)]->AddEdge(u, v, weight);
}

bool ShardedCodService::RemoveEdge(NodeId u, NodeId v) {
  COD_CHECK(u < partition_.shard_of_node.size());
  COD_CHECK(v < partition_.shard_of_node.size());
  // A cross-shard edge can never have been admitted, so there is nothing
  // to remove.
  if (ShardOf(u) != ShardOf(v)) return false;
  return shards_[ShardOf(u)]->RemoveEdge(u, v);
}

size_t ShardedCodService::pending_updates() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_updates();
  return total;
}

uint64_t ShardedCodService::epoch() const {
  // The merged epoch is the freshness FLOOR across shards — but only across
  // shards that own nodes. When the graph has fewer components than shards,
  // the surplus shards are structurally empty: no update can ever route to
  // them, their epoch stays pinned at its initial value forever, and
  // including them would cap the reported epoch of the whole service at
  // that constant no matter how many rebuilds the real shards publish.
  uint64_t min_epoch = 0;
  bool any = false;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (partition_.shard_nodes[s] == 0) continue;
    const uint64_t e = shards_[s]->epoch();
    min_epoch = any ? std::min(min_epoch, e) : e;
    any = true;
  }
  // All shards empty only for a node-less partition; report shard 0 rather
  // than inventing an epoch.
  return any ? min_epoch : shards_.front()->epoch();
}

bool ShardedCodService::epoch_degraded() const {
  for (const auto& shard : shards_) {
    if (shard->epoch_degraded()) return true;
  }
  return false;
}

size_t ShardedCodService::NumEdges() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->NumEdges();
  return total;
}

RebuildStats ShardedCodService::rebuild_stats() const {
  RebuildStats total;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    // Structurally empty shards (see epoch()) never rebuild after their
    // construction-time epoch; folding that constant baseline into the
    // aggregates would skew per-shard staleness ratios derived from them.
    if (partition_.shard_nodes[i] == 0) continue;
    const RebuildStats s = shards_[i]->rebuild_stats();
    total.attempts += s.attempts;
    total.failures += s.failures;
    total.retries += s.retries;
    total.published += s.published;
    total.published_degraded += s.published_degraded;
    if (!s.last_error.ok()) total.last_error = s.last_error;
  }
  return total;
}

bool ShardedCodService::RefreshDue() const {
  for (const auto& shard : shards_) {
    if (shard->RefreshDue()) return true;
  }
  return false;
}

Status ShardedCodService::Refresh() {
  // Every shard gets its refresh even after one fails — a failed shard
  // keeps serving its last good epoch, and partial freshness beats none.
  Status first_error;
  for (const auto& shard : shards_) {
    const Status s = shard->Refresh();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

bool ShardedCodService::RefreshAsync() {
  bool any = false;
  for (const auto& shard : shards_) any = shard->RefreshAsync() || any;
  return any;
}

void ShardedCodService::WaitForRebuild() {
  for (const auto& shard : shards_) shard->WaitForRebuild();
}

CodResult ShardedCodService::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                                       Rng& rng) {
  COD_CHECK(q < partition_.shard_of_node.size());
  return shards_[ShardOf(q)]->QueryCodL(q, attr, k, rng);
}

CodResult ShardedCodService::QueryCodU(NodeId q, uint32_t k, Rng& rng) {
  COD_CHECK(q < partition_.shard_of_node.size());
  return shards_[ShardOf(q)]->QueryCodU(q, k, rng);
}

std::vector<CodResult> ShardedCodService::QueryBatch(
    std::span<const QuerySpec> specs, TaskScheduler& scheduler,
    uint64_t batch_seed, const BatchOptions& options,
    BatchStats* stats) const {
  // One epoch snapshot per shard, all taken up front: the whole batch is
  // answered from one consistent layout-wide cut, and the shared_ptrs keep
  // every epoch alive however long the fan-out runs.
  std::vector<DynamicCodService::EpochSnapshot> epochs;
  epochs.reserve(shards_.size());
  std::vector<ShardBatchInput> inputs(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    epochs.push_back(shards_[s]->Snapshot());
    inputs[s].core = epochs.back().core.get();
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    COD_CHECK(specs[i].node < partition_.shard_of_node.size());
    inputs[ShardOf(specs[i].node)].indices.push_back(i);
  }
  return RunShardedQueryBatch(inputs, specs, scheduler, batch_seed, options,
                              stats);
}

}  // namespace cod
