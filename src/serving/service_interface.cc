#include "serving/service_interface.h"

#include <utility>

#include "serving/dynamic_service.h"
#include "serving/sharded_service.h"

namespace cod {

std::unique_ptr<CodServiceInterface> MakeCodService(
    Graph initial_graph, AttributeTable attrs, const ServiceOptions& options) {
  COD_CHECK(options.Validate().ok());
  if (options.num_shards == 1) {
    return std::make_unique<DynamicCodService>(std::move(initial_graph),
                                               std::move(attrs), options);
  }
  return std::make_unique<ShardedCodService>(std::move(initial_graph),
                                             std::move(attrs), options);
}

Result<std::unique_ptr<CodServiceInterface>> RecoverCodService(
    const ServiceOptions& options, Graph cold_graph,
    AttributeTable cold_attrs) {
  COD_RETURN_IF_ERROR(options.Validate());
  if (options.num_shards == 1) {
    Result<std::unique_ptr<DynamicCodService>> recovered =
        DynamicCodService::Recover(options);
    if (recovered.ok()) {
      return std::unique_ptr<CodServiceInterface>(
          std::move(recovered).value());
    }
    if (recovered.status().code() != StatusCode::kNotFound) {
      return recovered.status();
    }
    // No usable snapshot at all: cold-start from the provided source of
    // truth, exactly like first boot.
    return std::unique_ptr<CodServiceInterface>(
        std::make_unique<DynamicCodService>(
            std::move(cold_graph),
            std::make_shared<const AttributeTable>(std::move(cold_attrs)),
            options));
  }
  Result<std::unique_ptr<ShardedCodService>> recovered =
      ShardedCodService::Recover(options, std::move(cold_graph),
                                 std::move(cold_attrs));
  if (!recovered.ok()) return recovered.status();
  return std::unique_ptr<CodServiceInterface>(std::move(recovered).value());
}

}  // namespace cod
