// ServiceOptions: the single validated configuration object for every COD
// serving implementation (mono DynamicCodService and ShardedCodService),
// plus the answer-compatibility fingerprint that gates snapshot recovery.
//
// One struct, one Validate(), one Fingerprint(): benches, examples, and
// tests configure mono and sharded serving through exactly the same knobs,
// and a snapshot written by one layout can never warm-restore into a
// service whose answers would differ (the fingerprint covers everything
// that shapes answers, INCLUDING the sharding layout).

#ifndef COD_SERVING_SERVICE_OPTIONS_H_
#define COD_SERVING_SERVICE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/task_scheduler.h"
#include "core/engine_core.h"

namespace cod {

// How ShardedCodService assigns connected components to shards. Both
// strategies are COMPONENT-ATOMIC — a component is never split across
// shards — which is what keeps merged answers bit-identical across shard
// counts (see EngineOptions::component_scoped).
enum class PartitionStrategy : uint8_t {
  // Components sorted by (size desc, label asc), assigned greedily to the
  // currently lightest shard (ties toward the smallest shard index):
  // deterministic longest-processing-time balance on node count.
  kConnectedComponents = 0,
  // Components grouped by their dominant attribute (most frequent
  // AttributeId among member nodes, smallest id on ties) so queries about
  // one topic tend to hit one shard; groups are then balanced with the
  // same greedy rule. Falls back to pure size balance when the table has
  // no attributes.
  kAttributeLocality = 1,
};

// Everything a serving implementation needs, mono fields and sharding
// fields together. Field semantics are documented here once; the service
// classes reference this struct instead of redefining nested option types.
struct ServiceOptions {
  EngineOptions engine;

  // Rebuild when pending updates exceed this fraction of the snapshot's
  // edges (0 = rebuild on every update; large = manual Refresh only).
  double rebuild_threshold = 0.05;
  // Drives HIMOR sampling at every rebuild (rebuild ticket t samples with
  // seed + t). Shards deliberately share this seed: component-scoped HIMOR
  // builds derive per-source streams from it, so the same node samples the
  // same stream no matter which shard owns it.
  uint64_t seed = 1;

  // Build threshold-crossing rebuilds as rebuild-priority tasks on
  // `scheduler` instead of the querying thread; queries keep serving the
  // stale epoch meanwhile. Without it the service never rebuilds on its
  // own — the owner polls RefreshDue() and calls Refresh().
  bool async_rebuild = false;
  TaskScheduler* scheduler = nullptr;  // required iff async_rebuild

  // Failed ASYNC rebuilds retry up to this many times (so up to
  // 1 + max_rebuild_retries attempts per ticket), waiting
  // rebuild_backoff_initial_ms, then doubling up to rebuild_backoff_max_ms,
  // between attempts. The wait is a scheduler timer, not a sleep — no
  // worker is held during backoff. Synchronous Refresh() never retries —
  // the caller sees the Status and decides.
  uint32_t max_rebuild_retries = 3;
  uint32_t rebuild_backoff_initial_ms = 10;
  uint32_t rebuild_backoff_max_ms = 1000;

  // Wall-clock budget for each rebuild's HIMOR construction (0 =
  // unlimited). Bounds how long a rebuild can monopolize a pool worker; an
  // over-budget index build publishes degraded (publish_without_index)
  // rather than failing the rebuild.
  double rebuild_budget_seconds = 30.0;

  // Durable epoch snapshots (storage/snapshot_store.h). When non-empty,
  // every published epoch is serialized crash-safely to this directory and
  // pruned to `snapshots_keep` files; recovery warm-restarts from the
  // newest valid snapshot. A ShardedCodService treats this as the BASE
  // directory and gives shard i the subdirectory "shard-%04d" with its own
  // independent retention and corruption quarantine, so one shard's
  // corrupt files never cost another shard its warm restart.
  std::string snapshot_dir;
  size_t snapshots_keep = 2;

  // Incremental epoch rebuilds. When true, every rebuild (including the
  // first) runs on the counter-seeded per-sample schedule
  // RrSampleSeed(seed, source * theta + j) — the SAME seeds every epoch —
  // and a rebuild after update batches reuses the previous epoch's RR
  // samples, dendrogram merges, and hierarchical-first tags wherever the
  // dirty-vertex bitmap proves them untouched (see HimorIndex::BuildDelta).
  // Delta-rebuilt epochs are bit-identical to cold rebuilds on the same
  // graph, but the schedule differs from the non-delta mode's
  // seed-plus-ticket streams, so this flag joins the fingerprint.
  bool delta_rebuild = false;
  // Fall back to a full (cold) rebuild when the fraction of cached RR
  // samples invalidated by the batch exceeds this bound. A sample dies if
  // its RR set touches ANY dirty vertex, so the service counts casualties
  // exactly with one early-exit pass over the cached slabs (~1% of a
  // rebuild). The default sits at the measured break-even on cora-sim:
  // past ~15% invalidation the reuse bookkeeping costs more than it
  // saves. Latency-only knob: both paths produce identical answers, so it
  // stays out of the options fingerprint.
  double delta_max_dirty_fraction = 0.15;

  // When the budgeted HIMOR build fails but the epoch's graph and
  // hierarchy built fine, publish the epoch anyway WITHOUT the index
  // (degraded): fresh answers via the compressed-evaluation fallback beat
  // fast answers over a stale graph. Set false for the strict behavior (an
  // index failure fails the whole rebuild).
  bool publish_without_index = true;

  // ---- Sharding (ShardedCodService; ignored by a directly constructed
  // DynamicCodService, which is always one engine). ----

  // Number of shard engines. 1 = mono serving (MakeCodService returns a
  // plain DynamicCodService). >= 2 forces engine.component_scoped = true
  // on every shard so merged answers are independent of the layout.
  uint32_t num_shards = 1;
  PartitionStrategy partitioner = PartitionStrategy::kConnectedComponents;

  // Rejects nonsense before any engine is built: num_shards == 0,
  // async_rebuild without a scheduler, snapshots_keep == 0, a backoff
  // window that shrinks (initial > max), k / theta / himor_max_rank == 0,
  // engine.sketch_bits > 16, or a negative rebuild_threshold /
  // rebuild_budget_seconds.
  Status Validate() const;

  // Order-independent 64-bit digest of every field that shapes ANSWERS:
  // seed, engine.{k, theta, himor_max_rank, diffusion, transform.beta,
  // transform.transform, component_scoped, sketch_bits}, delta_rebuild,
  // num_shards, partitioner. engine.sketch_bits joins because it shapes the
  // persisted kSketch snapshot section and the sketch rung's answers;
  // engine.sketch_prune / engine.sketch_rung stay out (pruning is
  // answer-preserving and the rung only selects a degraded tier — pure
  // latency knobs a restart may flip).
  // Written into each epoch snapshot (EpochSnapshotMeta::options_fingerprint)
  // and checked on recovery, so a snapshot from a different layout or
  // parameterization is refused with kFailedPrecondition instead of being
  // restored into a service that would silently answer differently.
  // Latency/durability knobs (thresholds, budgets, retention, scheduler)
  // are deliberately excluded — changing them must not cost a warm restart.
  uint64_t Fingerprint() const;
};

}  // namespace cod

#endif  // COD_SERVING_SERVICE_OPTIONS_H_
