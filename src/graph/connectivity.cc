#include "graph/connectivity.h"

#include <algorithm>

namespace cod {

Components ConnectedComponents(const Graph& g) {
  Components result;
  result.label.assign(g.NumNodes(), kInvalidNode);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < g.NumNodes(); ++start) {
    if (result.label[start] != kInvalidNode) continue;
    const uint32_t comp = result.count++;
    result.label[start] = comp;
    queue.assign(1, start);
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      for (const AdjEntry& a : g.Neighbors(v)) {
        if (result.label[a.to] == kInvalidNode) {
          result.label[a.to] = comp;
          queue.push_back(a.to);
        }
      }
    }
  }
  return result;
}

bool IsConnected(const Graph& g) {
  if (g.NumNodes() == 0) return true;
  return ConnectedComponents(g).count == 1;
}

InducedSubgraph LargestComponent(const Graph& g) {
  const Components comps = ConnectedComponents(g);
  std::vector<size_t> size(comps.count, 0);
  for (uint32_t label : comps.label) ++size[label];
  const uint32_t best = static_cast<uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(size[best]);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (comps.label[v] == best) nodes.push_back(v);
  }
  return BuildInducedSubgraph(g, nodes);
}

double Conductance(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<char> in_set(g.NumNodes(), 0);
  double vol_s = 0.0;
  for (NodeId v : nodes) {
    COD_CHECK(v < g.NumNodes());
    in_set[v] = 1;
    vol_s += g.Degree(v);
  }
  const double vol_total = 2.0 * static_cast<double>(g.NumEdges());
  const double vol_rest = vol_total - vol_s;
  if (vol_s == 0.0 || vol_rest == 0.0) return 0.0;
  double cut = 0.0;
  for (NodeId v : nodes) {
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (!in_set[a.to]) cut += 1.0;
    }
  }
  return cut / std::min(vol_s, vol_rest);
}

}  // namespace cod
