// Structural centrality measures. COD ranks nodes by *diffusion* influence;
// PageRank is the classic structural proxy, provided for comparisons (e.g.,
// "would a PageRank shortlist have found the same promoters?") and as a
// cheap node weighting for influential community search.

#ifndef COD_GRAPH_CENTRALITY_H_
#define COD_GRAPH_CENTRALITY_H_

#include <vector>

#include "graph/graph.h"

namespace cod {

struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 100;
  // Stop when the L1 change between iterations falls below this.
  double tolerance = 1e-9;
};

// Weighted PageRank on the undirected graph (each edge acts as two directed
// edges; transition probability proportional to edge weight). Returns a
// probability vector (sums to 1). Isolated nodes hold their teleport mass.
std::vector<double> PageRank(const Graph& g,
                             const PageRankOptions& options = {});

}  // namespace cod

#endif  // COD_GRAPH_CENTRALITY_H_
