#include "graph/embeddings.h"

#include <cmath>

namespace cod {
namespace {

// Box-Muller standard normal from two uniforms.
double Gaussian(Rng& rng) {
  const double u1 = 1.0 - rng.UniformDouble();  // (0, 1]
  const double u2 = rng.UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

void Normalize(std::span<float> v) {
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  if (norm == 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(norm));
  for (float& x : v) x *= inv;
}

}  // namespace

EmbeddingTable::EmbeddingTable(size_t num_nodes, size_t dimension,
                               std::vector<float> row_major)
    : dimension_(dimension), data_(std::move(row_major)) {
  COD_CHECK(dimension >= 1);
  COD_CHECK_EQ(data_.size(), num_nodes * dimension);
}

double EmbeddingTable::Cosine(NodeId u, NodeId v) const {
  const auto a = Of(u);
  const auto b = Of(v);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < dimension_; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

EmbeddingTable MakeBlockEmbeddings(const std::vector<uint32_t>& block,
                                   size_t dimension, double noise, Rng& rng) {
  COD_CHECK(dimension >= 1);
  uint32_t num_blocks = 0;
  for (uint32_t b : block) num_blocks = std::max(num_blocks, b + 1);

  std::vector<float> topics(static_cast<size_t>(num_blocks) * dimension);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    std::span<float> topic(topics.data() + static_cast<size_t>(b) * dimension,
                           dimension);
    for (float& x : topic) x = static_cast<float>(Gaussian(rng));
    Normalize(topic);
  }

  std::vector<float> data(block.size() * dimension);
  for (NodeId v = 0; v < block.size(); ++v) {
    std::span<float> row(data.data() + static_cast<size_t>(v) * dimension,
                         dimension);
    const float* topic = topics.data() +
                         static_cast<size_t>(block[v]) * dimension;
    for (size_t i = 0; i < dimension; ++i) {
      row[i] = topic[i] + static_cast<float>(noise * Gaussian(rng));
    }
    Normalize(row);
  }
  return EmbeddingTable(block.size(), dimension, std::move(data));
}

}  // namespace cod
