#include "graph/centrality.h"

#include <cmath>

namespace cod {

std::vector<double> PageRank(const Graph& g, const PageRankOptions& options) {
  const size_t n = g.NumNodes();
  if (n == 0) return {};
  COD_CHECK(options.damping >= 0.0 && options.damping < 1.0);

  std::vector<double> weight_sum(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (const AdjEntry& a : g.Neighbors(v)) {
      weight_sum[v] += g.Weight(a.edge);
    }
  }

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double teleport = (1.0 - options.damping) / static_cast<double>(n);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      if (weight_sum[v] == 0.0) {
        dangling += rank[v];
        continue;
      }
      const double share = options.damping * rank[v] / weight_sum[v];
      for (const AdjEntry& a : g.Neighbors(v)) {
        next[a.to] += share * g.Weight(a.edge);
      }
    }
    // Dangling mass is spread uniformly (standard convention).
    const double base =
        teleport + options.damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] += base;
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace cod
