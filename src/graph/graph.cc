#include "graph/graph.h"

#include <algorithm>

namespace cod {

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return kInvalidEdge;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  for (const AdjEntry& a : Neighbors(u)) {
    if (a.to == v) return a.edge;
  }
  return kInvalidEdge;
}

double Graph::TotalWeight() const {
  if (weights_.empty()) return static_cast<double>(NumEdges());
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  if (u == v) return;  // Self-loops carry no structural information here.
  if (u > v) std::swap(u, v);
  const size_t needed = static_cast<size_t>(v) + 1;
  if (needed > num_nodes_) num_nodes_ = needed;
  pending_.emplace_back(u, v);
  pending_weights_.push_back(weight);
}

void GraphBuilder::SetNumNodes(size_t n) {
  COD_CHECK_GE(n, num_nodes_);
  num_nodes_ = n;
}

Graph GraphBuilder::Build() && {
  // Sort edge records to merge duplicates deterministically.
  std::vector<size_t> order(pending_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pending_[a] < pending_[b];
  });

  Graph g;
  g.offsets_.assign(num_nodes_ + 1, 0);
  bool weighted = false;
  for (size_t idx : order) {
    const auto& e = pending_[idx];
    if (!g.edges_.empty() && g.edges_.back() == e) {
      g.weights_.back() += pending_weights_[idx];
      weighted = true;
      continue;
    }
    g.edges_.push_back(e);
    g.weights_.push_back(pending_weights_[idx]);
    if (pending_weights_[idx] != 1.0) weighted = true;
  }
  if (!weighted) g.weights_.clear();

  // Two-pass CSR fill.
  for (const auto& [u, v] : g.edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (size_t i = 1; i <= num_nodes_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.resize(2 * g.edges_.size());
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const auto [u, v] = g.edges_[e];
    g.adjacency_[cursor[u]++] = AdjEntry{v, e};
    g.adjacency_[cursor[v]++] = AdjEntry{u, e};
  }
  // Neighbor lists come out sorted by id because edges were sorted and each
  // node's slots are filled in edge order; sortedness is handy for tests.
  return g;
}

InducedSubgraph BuildInducedSubgraph(const Graph& g,
                                     std::span<const NodeId> nodes) {
  InducedSubgraph sub;
  sub.to_parent.assign(nodes.begin(), nodes.end());
  std::vector<NodeId> to_local(g.NumNodes(), kInvalidNode);
  for (size_t i = 0; i < nodes.size(); ++i) {
    COD_CHECK(nodes[i] < g.NumNodes());
    COD_CHECK(to_local[nodes[i]] == kInvalidNode);  // no duplicates
    to_local[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(nodes.size());
  for (NodeId parent_u : nodes) {
    const NodeId lu = to_local[parent_u];
    for (const AdjEntry& a : g.Neighbors(parent_u)) {
      const NodeId lv = to_local[a.to];
      if (lv == kInvalidNode || lv <= lu) continue;  // keep each edge once
      builder.AddEdge(lu, lv, g.Weight(a.edge));
    }
  }
  sub.graph = std::move(builder).Build();
  return sub;
}

}  // namespace cod
