// Plain-text persistence for graphs and attribute tables.
//
// Formats (whitespace-separated, '#'-prefixed comment lines ignored):
//  * Edge list: one "u v [weight]" per line; node ids are dense integers.
//  * Attributes: one "node attr_name..." per line; names are interned.
//
// These match the common formats of SNAP / Network Repository exports so real
// datasets can be dropped in alongside the synthetic registry.

#ifndef COD_GRAPH_GRAPH_IO_H_
#define COD_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/binary_io.h"
#include "common/status.h"
#include "graph/attributes.h"
#include "graph/graph.h"

namespace cod {

// ---- Binary payload codecs (buffer-to-buffer, no file envelope). ----
//
// Used by the epoch snapshot container (storage/epoch_snapshot.h), which
// checksums each section itself. Round trips are exact: the deserialized
// graph is rebuilt through GraphBuilder, whose canonical edge sort makes
// the result bit-identical to the original (adjacency, edge ids, weights).
// Deserializers validate every length and id against the snapshot's
// declared sizes — corrupt bytes produce a clean Status, never a crash.
void SerializeGraph(const Graph& g, BinaryBufferWriter& out);
Result<Graph> DeserializeGraph(BinarySpanReader& in);

void SerializeAttributes(const AttributeTable& table, BinaryBufferWriter& out);
Result<AttributeTable> DeserializeAttributes(BinarySpanReader& in);

// ---- Plain-text formats. ----

// Loads an undirected edge list. Fails with IoError / InvalidArgument on
// unreadable files or malformed lines.
Result<Graph> LoadEdgeList(const std::string& path);

// Writes "u v" (or "u v weight" for weighted graphs) lines.
Status SaveEdgeList(const Graph& g, const std::string& path);

// Loads node attributes for a graph with `num_nodes` nodes.
Result<AttributeTable> LoadAttributes(const std::string& path,
                                      size_t num_nodes);

Status SaveAttributes(const AttributeTable& table, const std::string& path);

}  // namespace cod

#endif  // COD_GRAPH_GRAPH_IO_H_
