// Plain-text persistence for graphs and attribute tables.
//
// Formats (whitespace-separated, '#'-prefixed comment lines ignored):
//  * Edge list: one "u v [weight]" per line; node ids are dense integers.
//  * Attributes: one "node attr_name..." per line; names are interned.
//
// These match the common formats of SNAP / Network Repository exports so real
// datasets can be dropped in alongside the synthetic registry.

#ifndef COD_GRAPH_GRAPH_IO_H_
#define COD_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/attributes.h"
#include "graph/graph.h"

namespace cod {

// Loads an undirected edge list. Fails with IoError / InvalidArgument on
// unreadable files or malformed lines.
Result<Graph> LoadEdgeList(const std::string& path);

// Writes "u v" (or "u v weight" for weighted graphs) lines.
Status SaveEdgeList(const Graph& g, const std::string& path);

// Loads node attributes for a graph with `num_nodes` nodes.
Result<AttributeTable> LoadAttributes(const std::string& path,
                                      size_t num_nodes);

Status SaveAttributes(const AttributeTable& table, const std::string& path);

}  // namespace cod

#endif  // COD_GRAPH_GRAPH_IO_H_
