#include "graph/attributes.h"

#include <algorithm>

namespace cod {

bool AttributeTable::Has(NodeId v, AttributeId a) const {
  const auto attrs = AttributesOf(v);
  return std::binary_search(attrs.begin(), attrs.end(), a);
}

bool AttributeTable::HasAny(NodeId v,
                            std::span<const AttributeId> attrs) const {
  for (AttributeId a : attrs) {
    if (Has(v, a)) return true;
  }
  return false;
}

AttributeId AttributeTable::Find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidAttribute : it->second;
}

AttributeId AttributeTableBuilder::Intern(const std::string& name) {
  const auto [it, inserted] =
      index_.emplace(name, static_cast<AttributeId>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

void AttributeTableBuilder::Add(NodeId node, AttributeId attribute) {
  COD_CHECK(attribute < names_.size());
  pending_.emplace_back(node, attribute);
}

AttributeTable AttributeTableBuilder::Build(size_t num_nodes) && {
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());

  AttributeTable table;
  table.names_ = std::move(names_);
  table.index_ = std::move(index_);
  table.offsets_.assign(num_nodes + 1, 0);
  for (const auto& [node, attr] : pending_) {
    COD_CHECK(node < num_nodes);
    ++table.offsets_[node + 1];
  }
  for (size_t i = 1; i <= num_nodes; ++i) {
    table.offsets_[i] += table.offsets_[i - 1];
  }
  table.values_.resize(pending_.size());
  std::vector<size_t> cursor(table.offsets_.begin(), table.offsets_.end() - 1);
  for (const auto& [node, attr] : pending_) {
    table.values_[cursor[node]++] = attr;
  }
  return table;
}

}  // namespace cod
