// Heterogeneous information networks (HINs) and meta-path projection.
//
// The paper names COD over HINs as its first future-work direction (Sec.
// VI): hierarchies and influence have to be interpreted per node/edge type.
// This module provides the standard bridge the HIN community-search
// literature uses: a typed graph plus *meta-path projection* — e.g., in a
// bibliographic network, the meta-path Author-Paper-Author projects to a
// homogeneous co-authorship graph whose edge weights count connecting paths
// — after which the whole COD machinery applies unchanged. See
// examples/hin_bibliographic.cc for the end-to-end flow.

#ifndef COD_GRAPH_HIN_H_
#define COD_GRAPH_HIN_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cod {

using NodeTypeId = uint32_t;

// A typed undirected graph: the topology of a Graph plus one type per node
// (edge semantics follow from their endpoint types, as usual in the
// star-schema HIN literature).
class HinGraph {
 public:
  HinGraph() = default;
  HinGraph(const HinGraph&) = delete;
  HinGraph& operator=(const HinGraph&) = delete;
  HinGraph(HinGraph&&) = default;
  HinGraph& operator=(HinGraph&&) = default;

  const Graph& graph() const { return graph_; }
  size_t NumNodes() const { return graph_.NumNodes(); }
  size_t NumTypes() const { return type_names_.size(); }

  NodeTypeId TypeOf(NodeId v) const {
    COD_DCHECK(v < node_type_.size());
    return node_type_[v];
  }
  const std::string& TypeName(NodeTypeId t) const {
    COD_DCHECK(t < type_names_.size());
    return type_names_[t];
  }
  // kInvalidNode-like sentinel: returns NumTypes() when unknown.
  NodeTypeId FindType(const std::string& name) const;

  // All nodes of the given type, ascending.
  std::vector<NodeId> NodesOfType(NodeTypeId t) const;

 private:
  friend class HinGraphBuilder;

  Graph graph_;
  std::vector<NodeTypeId> node_type_;
  std::vector<std::string> type_names_;
  std::unordered_map<std::string, NodeTypeId> type_index_;
};

class HinGraphBuilder {
 public:
  NodeTypeId InternType(const std::string& name);

  // Creates a node of the given type and returns its id.
  NodeId AddNode(NodeTypeId type);
  NodeId AddNode(const std::string& type) { return AddNode(InternType(type)); }

  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  HinGraph Build() &&;

 private:
  std::vector<NodeTypeId> node_type_;
  std::vector<std::string> type_names_;
  std::unordered_map<std::string, NodeTypeId> type_index_;
  GraphBuilder graph_builder_;
};

// The homogeneous graph induced by a symmetric meta-path. Nodes are the
// HIN nodes of the meta-path's endpoint type; an edge {x, y} carries weight
// = number of distinct meta-path instances connecting x and y.
struct MetaPathProjection {
  Graph graph;                  // over local ids
  std::vector<NodeId> to_hin;   // local id -> HIN node id
  // Endpoint nodes whose expansion hit MetaPathOptions::max_paths_per_node;
  // their edges are omitted rather than silently under-counted.
  size_t truncated_sources = 0;
};

struct MetaPathOptions {
  // Per-start-node cap on enumerated path endpoints (hub-heavy HINs explode
  // combinatorially; excess paths beyond the cap are dropped and counted in
  // MetaPathProjection truncation stats). 0 = unlimited.
  size_t max_paths_per_node = 200000;
};

// `metapath` is a sequence of node types t0, t1, ..., tk with t0 == tk and
// k >= 1 (e.g., {author, paper, author}). Fails with InvalidArgument on
// malformed paths or unknown types.
Result<MetaPathProjection> ProjectMetaPath(const HinGraph& hin,
                                           std::span<const NodeTypeId> metapath,
                                           const MetaPathOptions& options = {});

}  // namespace cod

#endif  // COD_GRAPH_HIN_H_
