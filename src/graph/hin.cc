#include "graph/hin.h"

#include <algorithm>

namespace cod {

NodeTypeId HinGraph::FindType(const std::string& name) const {
  const auto it = type_index_.find(name);
  return it == type_index_.end() ? static_cast<NodeTypeId>(NumTypes())
                                 : it->second;
}

std::vector<NodeId> HinGraph::NodesOfType(NodeTypeId t) const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < node_type_.size(); ++v) {
    if (node_type_[v] == t) nodes.push_back(v);
  }
  return nodes;
}

NodeTypeId HinGraphBuilder::InternType(const std::string& name) {
  const auto [it, inserted] =
      type_index_.emplace(name, static_cast<NodeTypeId>(type_names_.size()));
  if (inserted) type_names_.push_back(name);
  return it->second;
}

NodeId HinGraphBuilder::AddNode(NodeTypeId type) {
  COD_CHECK(type < type_names_.size());
  const NodeId id = static_cast<NodeId>(node_type_.size());
  node_type_.push_back(type);
  return id;
}

void HinGraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  COD_CHECK(u < node_type_.size());
  COD_CHECK(v < node_type_.size());
  graph_builder_.AddEdge(u, v, weight);
}

HinGraph HinGraphBuilder::Build() && {
  HinGraph hin;
  graph_builder_.SetNumNodes(node_type_.size());
  hin.graph_ = std::move(graph_builder_).Build();
  hin.node_type_ = std::move(node_type_);
  hin.type_names_ = std::move(type_names_);
  hin.type_index_ = std::move(type_index_);
  return hin;
}

Result<MetaPathProjection> ProjectMetaPath(
    const HinGraph& hin, std::span<const NodeTypeId> metapath,
    const MetaPathOptions& options) {
  if (metapath.size() < 3) {
    return Status::InvalidArgument("meta-path needs at least three types");
  }
  if (metapath.front() != metapath.back()) {
    return Status::InvalidArgument("meta-path must be symmetric in its "
                                   "endpoint type (t0 == tk)");
  }
  for (NodeTypeId t : metapath) {
    if (t >= hin.NumTypes()) {
      return Status::InvalidArgument("meta-path references an unknown type");
    }
  }

  const Graph& g = hin.graph();
  const std::vector<NodeId> endpoints = hin.NodesOfType(metapath.front());
  std::vector<NodeId> to_local(g.NumNodes(), kInvalidNode);
  for (size_t i = 0; i < endpoints.size(); ++i) {
    to_local[endpoints[i]] = static_cast<NodeId>(i);
  }

  MetaPathProjection projection;
  projection.to_hin = endpoints;
  GraphBuilder builder(endpoints.size());

  // Layered walk counting: counts[v] = number of meta-path prefixes from x
  // ending at v with the correct type sequence (commuting-matrix semantics).
  std::vector<double> counts(g.NumNodes(), 0.0);
  std::vector<double> next(g.NumNodes(), 0.0);
  std::vector<NodeId> frontier;
  std::vector<NodeId> next_frontier;
  for (NodeId x : endpoints) {
    frontier.assign(1, x);
    counts[x] = 1.0;
    bool truncated = false;
    for (size_t step = 1; step < metapath.size() && !truncated; ++step) {
      const NodeTypeId want = metapath[step];
      next_frontier.clear();
      double total = 0.0;
      for (NodeId v : frontier) {
        const double c = counts[v];
        for (const AdjEntry& a : g.Neighbors(v)) {
          if (hin.TypeOf(a.to) != want) continue;
          if (next[a.to] == 0.0) next_frontier.push_back(a.to);
          next[a.to] += c;
          total += c;
        }
      }
      if (options.max_paths_per_node > 0 &&
          total > static_cast<double>(options.max_paths_per_node)) {
        truncated = true;
        ++projection.truncated_sources;
      }
      for (NodeId v : frontier) counts[v] = 0.0;
      frontier.swap(next_frontier);
      for (NodeId v : frontier) {
        counts[v] = next[v];
        next[v] = 0.0;
      }
    }
    // Emit edges toward larger local ids only (the symmetric count appears
    // once from each endpoint).
    const NodeId lx = to_local[x];
    for (NodeId y : frontier) {
      if (!truncated) {
        const NodeId ly = to_local[y];
        COD_DCHECK(ly != kInvalidNode);  // frontier nodes have type t0
        if (ly > lx) builder.AddEdge(lx, ly, counts[y]);
      }
      counts[y] = 0.0;
    }
  }
  projection.graph = std::move(builder).Build();
  return projection;
}

}  // namespace cod
