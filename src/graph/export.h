// Graphviz DOT export for inspection and figures: a graph with an optional
// highlighted community (the paper's Fig. 1 / Fig. 10 style plots), and a
// dendrogram's top levels.

#ifndef COD_GRAPH_EXPORT_H_
#define COD_GRAPH_EXPORT_H_

#include <span>
#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

struct DotOptions {
  // When the graph is large, restrict the plot to the highlighted community
  // plus its direct neighbors (0 = plot everything).
  size_t neighborhood_only_above = 300;
  std::string highlight_color = "dodgerblue";
  std::string query_color = "gold";
};

// Writes `g` as an undirected DOT graph; nodes in `community` are filled
// with the highlight color and `query` (if not kInvalidNode) with the query
// color.
Status ExportCommunityDot(const Graph& g, std::span<const NodeId> community,
                          NodeId query, const std::string& path,
                          const DotOptions& options = {});

// Writes the top levels of the dendrogram (communities with at least
// `min_size` leaves) as a DOT tree, labeling each vertex with its size.
Status ExportDendrogramDot(const Dendrogram& dendrogram, uint32_t min_size,
                           const std::string& path);

}  // namespace cod

#endif  // COD_GRAPH_EXPORT_H_
