#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace cod {
namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  // Simulated read failure (tests of loader error paths; see
  // common/failpoint.h).
  if (COD_FAILPOINT("graph_io/load_edge_list")) {
    return Status::IoError("failpoint graph_io/load_edge_list armed");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  GraphBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    uint64_t u = 0;
    uint64_t v = 0;
    double w = 1.0;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'u v [weight]'");
    }
    // A corrupt file must not be able to OOM the process through one huge
    // node id (node count drives allocation).
    constexpr uint64_t kMaxNodeId = 100'000'000;
    if (u > kMaxNodeId || v > kMaxNodeId) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": node id exceeds the 1e8 limit");
    }
    ss >> w;  // optional
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  return std::move(builder).Build();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# codlib edge list: " << g.NumNodes() << " nodes, " << g.NumEdges()
      << " edges\n";
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    out << u << ' ' << v;
    if (g.HasWeights()) out << ' ' << g.Weight(e);
    out << '\n';
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

Result<AttributeTable> LoadAttributes(const std::string& path,
                                      size_t num_nodes) {
  // Simulated read failure, mirroring LoadEdgeList.
  if (COD_FAILPOINT("graph_io/load_attributes")) {
    return Status::IoError("failpoint graph_io/load_attributes armed");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  AttributeTableBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    uint64_t node = 0;
    if (!(ss >> node)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'node attr...'");
    }
    if (node >= num_nodes) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": node id out of range");
    }
    std::string name;
    while (ss >> name) builder.Add(static_cast<NodeId>(node), name);
  }
  return std::move(builder).Build(num_nodes);
}

Status SaveAttributes(const AttributeTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (NodeId v = 0; v < table.NumNodes(); ++v) {
    const auto attrs = table.AttributesOf(v);
    if (attrs.empty()) continue;
    out << v;
    for (AttributeId a : attrs) out << ' ' << table.Name(a);
    out << '\n';
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace cod
