#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace cod {
namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// A corrupt length or id field must never drive allocation or indexing; this
// matches the text loaders' 1e8 node cap.
constexpr uint64_t kMaxBinaryNodes = 100'000'000;
constexpr uint64_t kMaxNameBytes = 1 << 20;

}  // namespace

void SerializeGraph(const Graph& g, BinaryBufferWriter& out) {
  out.WritePod<uint64_t>(g.NumNodes());
  out.WritePod<uint8_t>(g.HasWeights() ? 1 : 0);
  // Endpoints flat in EdgeId order. GraphBuilder::Build() canonicalizes
  // ((min, max) pairs, lexicographically sorted, duplicates merged), so these
  // are strictly increasing — a fact DeserializeGraph re-validates and that
  // makes the rebuild reproduce identical edge ids and adjacency.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    endpoints.push_back(u);
    endpoints.push_back(v);
  }
  out.WriteVector(endpoints);
  if (g.HasWeights()) {
    std::vector<double> weights(g.NumEdges());
    for (EdgeId e = 0; e < g.NumEdges(); ++e) weights[e] = g.Weight(e);
    out.WriteVector(weights);
  }
}

Result<Graph> DeserializeGraph(BinarySpanReader& in) {
  uint64_t num_nodes = 0;
  uint8_t has_weights = 0;
  if (!in.ReadPod(&num_nodes) || !in.ReadPod(&has_weights)) {
    return in.status();
  }
  if (num_nodes > kMaxBinaryNodes) {
    in.Fail("node count exceeds the 1e8 limit");
    return in.status();
  }
  if (has_weights > 1) {
    in.Fail("corrupt weights flag");
    return in.status();
  }
  std::vector<NodeId> endpoints;
  if (!in.ReadVector(&endpoints)) return in.status();
  if (endpoints.size() % 2 != 0) {
    in.Fail("odd endpoint count");
    return in.status();
  }
  const uint64_t num_edges = endpoints.size() / 2;
  std::vector<double> weights;
  if (has_weights) {
    if (!in.ReadVector(&weights, num_edges)) return in.status();
    if (weights.size() != num_edges) {
      in.Fail("weight count does not match edge count");
      return in.status();
    }
  }
  GraphBuilder builder(num_nodes);
  std::pair<NodeId, NodeId> prev{0, 0};
  for (uint64_t e = 0; e < num_edges; ++e) {
    const NodeId u = endpoints[2 * e];
    const NodeId v = endpoints[2 * e + 1];
    // Canonical-form invariants double as corruption detection: u < v (no
    // self-loops), both in range, and edges strictly increasing (which also
    // guarantees the rebuild has nothing to merge or reorder).
    if (u >= v || v >= num_nodes) {
      in.Fail("invalid edge endpoints");
      return in.status();
    }
    if (e > 0 && std::pair<NodeId, NodeId>{u, v} <= prev) {
      in.Fail("edges not in canonical order");
      return in.status();
    }
    prev = {u, v};
    builder.AddEdge(u, v, has_weights ? weights[e] : 1.0);
  }
  return std::move(builder).Build();
}

void SerializeAttributes(const AttributeTable& table, BinaryBufferWriter& out) {
  out.WritePod<uint64_t>(table.NumNodes());
  out.WritePod<uint64_t>(table.NumAttributes());
  for (AttributeId a = 0; a < table.NumAttributes(); ++a) {
    out.WriteString(table.Name(a));
  }
  // Per-node CSR: offsets, then the flat (sorted, deduplicated) value array.
  std::vector<uint64_t> offsets;
  std::vector<AttributeId> values;
  offsets.reserve(table.NumNodes() + 1);
  offsets.push_back(0);
  for (NodeId v = 0; v < table.NumNodes(); ++v) {
    const auto attrs = table.AttributesOf(v);
    values.insert(values.end(), attrs.begin(), attrs.end());
    offsets.push_back(values.size());
  }
  out.WriteVector(offsets);
  out.WriteVector(values);
}

Result<AttributeTable> DeserializeAttributes(BinarySpanReader& in) {
  uint64_t num_nodes = 0;
  uint64_t num_names = 0;
  if (!in.ReadPod(&num_nodes) || !in.ReadPod(&num_names)) return in.status();
  if (num_nodes > kMaxBinaryNodes) {
    in.Fail("node count exceeds the 1e8 limit");
    return in.status();
  }
  // Every name costs at least its 8-byte length prefix, bounding the count
  // by the bytes actually present.
  if (num_names > in.remaining() / sizeof(uint64_t)) {
    in.Fail("attribute name count exceeds remaining bytes");
    return in.status();
  }
  AttributeTableBuilder builder;
  for (uint64_t a = 0; a < num_names; ++a) {
    std::string name;
    if (!in.ReadString(&name, kMaxNameBytes)) return in.status();
    // Interning names in id order preserves the ids; a duplicate name would
    // silently alias two ids, so reject it.
    if (builder.Intern(name) != static_cast<AttributeId>(a)) {
      in.Fail("duplicate attribute name");
      return in.status();
    }
  }
  std::vector<uint64_t> offsets;
  if (!in.ReadVector(&offsets, num_nodes + 1)) return in.status();
  if (offsets.size() != num_nodes + 1 || offsets.front() != 0) {
    in.Fail("corrupt attribute offsets");
    return in.status();
  }
  for (uint64_t v = 0; v < num_nodes; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      in.Fail("attribute offsets not monotone");
      return in.status();
    }
  }
  std::vector<AttributeId> values;
  if (!in.ReadVector(&values, offsets.back())) return in.status();
  if (values.size() != offsets.back()) {
    in.Fail("attribute value count does not match offsets");
    return in.status();
  }
  for (uint64_t v = 0; v < num_nodes; ++v) {
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (values[i] >= num_names) {
        in.Fail("attribute id out of range");
        return in.status();
      }
      // Sorted-unique per node is both a format invariant and what makes
      // the rebuild reproduce the table exactly.
      if (i > offsets[v] && values[i] <= values[i - 1]) {
        in.Fail("attribute ids not sorted");
        return in.status();
      }
      builder.Add(static_cast<NodeId>(v), values[i]);
    }
  }
  return std::move(builder).Build(num_nodes);
}

Result<Graph> LoadEdgeList(const std::string& path) {
  // Simulated read failure (tests of loader error paths; see
  // common/failpoint.h).
  if (COD_FAILPOINT("graph_io/load_edge_list")) {
    return Status::IoError("failpoint graph_io/load_edge_list armed");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  GraphBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    uint64_t u = 0;
    uint64_t v = 0;
    double w = 1.0;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'u v [weight]'");
    }
    // A corrupt file must not be able to OOM the process through one huge
    // node id (node count drives allocation).
    constexpr uint64_t kMaxNodeId = 100'000'000;
    if (u > kMaxNodeId || v > kMaxNodeId) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": node id exceeds the 1e8 limit");
    }
    ss >> w;  // optional
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  return std::move(builder).Build();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# codlib edge list: " << g.NumNodes() << " nodes, " << g.NumEdges()
      << " edges\n";
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    out << u << ' ' << v;
    if (g.HasWeights()) out << ' ' << g.Weight(e);
    out << '\n';
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

Result<AttributeTable> LoadAttributes(const std::string& path,
                                      size_t num_nodes) {
  // Simulated read failure, mirroring LoadEdgeList.
  if (COD_FAILPOINT("graph_io/load_attributes")) {
    return Status::IoError("failpoint graph_io/load_attributes armed");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  AttributeTableBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    uint64_t node = 0;
    if (!(ss >> node)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'node attr...'");
    }
    if (node >= num_nodes) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": node id out of range");
    }
    std::string name;
    while (ss >> name) builder.Add(static_cast<NodeId>(node), name);
  }
  return std::move(builder).Build(num_nodes);
}

Status SaveAttributes(const AttributeTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (NodeId v = 0; v < table.NumNodes(); ++v) {
    const auto attrs = table.AttributesOf(v);
    if (attrs.empty()) continue;
    out << v;
    for (AttributeId a : attrs) out << ' ' << table.Name(a);
    out << '\n';
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace cod
