// Synthetic graph generators.
//
// The paper evaluates on public networks (Cora, CiteSeer, PubMed, Retweet,
// Amazon, DBLP, LiveJournal) that are not shipped with this repository; the
// registry in eval/datasets.* rebuilds stand-ins for each of them from the
// generators below (see DESIGN.md section 3 for the substitution argument).
//
// HierarchicalPlantedPartition produces a graph with a genuine community
// hierarchy: nodes are recursively partitioned into f^levels leaf blocks and
// each edge is sampled at a hierarchy depth drawn from a geometric mixture,
// connecting two nodes that agree on that many top levels. Deeper edges make
// tighter communities; the leaf blocks serve as ground-truth communities for
// attribute assignment.

#ifndef COD_GRAPH_GENERATORS_H_
#define COD_GRAPH_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "graph/attributes.h"
#include "graph/graph.h"

namespace cod {

struct HppParams {
  size_t num_nodes = 0;
  int levels = 3;    // depth of the planted hierarchy
  int fanout = 4;    // children per internal block
  size_t num_edges = 0;
  // Fraction of edges sampled inside leaf blocks; the remaining mass decays
  // geometrically toward the root (factor `decay` per level up).
  double leaf_fraction = 0.6;
  double decay = 0.5;
};

struct GeneratedGraph {
  Graph graph;
  // Ground-truth leaf-block label per node (contiguous ranges).
  std::vector<uint32_t> block;
  uint32_t num_blocks = 0;
};

GeneratedGraph HierarchicalPlantedPartition(const HppParams& params, Rng& rng);

// Barabási–Albert preferential attachment: each new node attaches to
// `edges_per_node` existing nodes chosen proportionally to degree.
Graph BarabasiAlbert(size_t num_nodes, int edges_per_node, Rng& rng);

// G(n, m): m distinct uniform random edges.
Graph ErdosRenyi(size_t num_nodes, size_t num_edges, Rng& rng);

// Hub-heavy graph with planted communities: a preferential-attachment
// backbone (skewed degrees, which skews agglomerative hierarchies, as on the
// paper's Retweet dataset) overlaid with intra-block edges.
struct HubbyParams {
  size_t num_nodes = 0;
  int backbone_edges_per_node = 1;
  size_t num_blocks = 0;
  size_t extra_block_edges = 0;  // intra-block edges added on top
};
GeneratedGraph HubbyCommunityGraph(const HubbyParams& params, Rng& rng);

// Core-periphery graph with mega-hubs: a small dense core plus a large
// periphery whose nodes attach to the core with preferential attachment
// (celebrity/follower structure, as in retweet and citation networks).
// Under average-linkage clustering, each core hub accretes its periphery one
// node at a time, producing exactly the skewed global hierarchies the paper
// observes on PubMed/Retweet (Fig. 4). Blocks partition the core; periphery
// nodes inherit the block of their first core target, and optional
// intra-block periphery edges give LORE attribute-coherent local structure.
struct CorePeripheryParams {
  size_t num_nodes = 0;
  size_t core_size = 0;
  size_t core_edges = 0;          // random edges inside the core
  double second_edge_prob = 0.6;  // extra preferential edge per periphery node
  size_t num_blocks = 0;
  size_t intra_block_edges = 0;   // extra random edges within blocks
};
GeneratedGraph CorePeripheryGraph(const CorePeripheryParams& params, Rng& rng);

// LFR-like benchmark graph (Lancichinetti-Fortunato-Radicchi): power-law
// degrees, power-law community sizes, and a mixing parameter mu giving each
// node a ~mu fraction of inter-community edges. Simplifications vs the
// original benchmark: stub matching resolves collisions by dropping (so
// realized degrees are slightly below nominal), and nodes are assigned to
// communities by capped first-fit rather than the original rewiring loop.
struct LfrParams {
  size_t num_nodes = 0;
  double degree_exponent = 2.5;     // tau1
  uint32_t min_degree = 3;
  uint32_t max_degree = 50;
  double community_exponent = 1.5;  // tau2
  size_t min_community = 20;
  size_t max_community = 200;
  double mu = 0.2;                  // inter-community edge fraction
};
GeneratedGraph LfrLikeGraph(const LfrParams& params, Rng& rng);

// Adds the minimum number of random edges needed to make `g` connected
// (one edge from each non-giant component to the giant one). Node count is
// preserved.
Graph EnsureConnected(Graph g, Rng& rng);

// The paper's attribute scheme for Amazon/DBLP/LiveJournal: draw
// `num_attributes` distinct attribute names and give every node of a
// ground-truth block the block's randomly chosen attribute.
AttributeTable AssignBlockAttributes(const std::vector<uint32_t>& block,
                                     size_t num_attributes, Rng& rng);

// Small-vocabulary correlated attributes (Cora/CiteSeer/PubMed/Retweet-style
// class labels): every block has a dominant attribute; each node takes it
// with probability `fidelity`, otherwise a uniform random one, and with
// probability `extra_prob` also gains one extra uniform attribute.
AttributeTable AssignCorrelatedAttributes(const std::vector<uint32_t>& block,
                                          size_t vocabulary_size,
                                          double fidelity, double extra_prob,
                                          Rng& rng);

}  // namespace cod

#endif  // COD_GRAPH_GENERATORS_H_
