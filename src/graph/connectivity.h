// Connectivity utilities: components, largest component extraction, and the
// conductance quality measure used in the paper's case study.

#ifndef COD_GRAPH_CONNECTIVITY_H_
#define COD_GRAPH_CONNECTIVITY_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace cod {

struct Components {
  std::vector<uint32_t> label;  // per node, in [0, count)
  uint32_t count = 0;
};

// Labels connected components with BFS; labels are assigned in order of the
// smallest node id in each component.
Components ConnectedComponents(const Graph& g);

bool IsConnected(const Graph& g);

// Extracts the largest connected component as an induced subgraph
// (ties broken toward the smaller component label).
InducedSubgraph LargestComponent(const Graph& g);

// Conductance of the cut (S, V \ S):
//   cut(S) / min(vol(S), vol(V \ S)),
// where vol is the sum of degrees. Returns 0 if S or its complement has zero
// volume. `nodes` must contain distinct valid ids.
double Conductance(const Graph& g, std::span<const NodeId> nodes);

}  // namespace cod

#endif  // COD_GRAPH_CONNECTIVITY_H_
