// Categorical node attributes with an interned vocabulary.
//
// Following the attributed-community-search literature the paper builds on,
// each node carries a (possibly empty) set of categorical attributes drawn
// from a shared vocabulary. Attribute sets are stored in CSR form with each
// node's attribute ids sorted, so membership tests are binary searches over
// tiny ranges.

#ifndef COD_GRAPH_ATTRIBUTES_H_
#define COD_GRAPH_ATTRIBUTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace cod {

using AttributeId = uint32_t;

inline constexpr AttributeId kInvalidAttribute = static_cast<AttributeId>(-1);

class AttributeTable {
 public:
  AttributeTable() = default;

  AttributeTable(const AttributeTable&) = delete;
  AttributeTable& operator=(const AttributeTable&) = delete;
  AttributeTable(AttributeTable&&) = default;
  AttributeTable& operator=(AttributeTable&&) = default;

  size_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumAttributes() const { return names_.size(); }

  // Sorted attribute ids of node `v`.
  std::span<const AttributeId> AttributesOf(NodeId v) const {
    COD_DCHECK(v < NumNodes());
    return {values_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  bool Has(NodeId v, AttributeId a) const;

  // True iff `v` carries at least one of `attrs` (any order, any size;
  // used by multi-attribute "topic set" queries).
  bool HasAny(NodeId v, std::span<const AttributeId> attrs) const;

  const std::string& Name(AttributeId a) const {
    COD_DCHECK(a < names_.size());
    return names_[a];
  }

  // Returns the id of `name`, or kInvalidAttribute if unknown.
  AttributeId Find(const std::string& name) const;

 private:
  friend class AttributeTableBuilder;

  std::vector<size_t> offsets_;
  std::vector<AttributeId> values_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> index_;
};

class AttributeTableBuilder {
 public:
  // Interns `name`, returning its stable id.
  AttributeId Intern(const std::string& name);

  void Add(NodeId node, AttributeId attribute);
  void Add(NodeId node, const std::string& name) { Add(node, Intern(name)); }

  // Builds a table covering nodes 0..num_nodes-1 (nodes never mentioned get
  // empty attribute sets). Duplicate (node, attribute) pairs are collapsed.
  AttributeTable Build(size_t num_nodes) &&;

 private:
  std::vector<std::pair<NodeId, AttributeId>> pending_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> index_;
};

// An attributed graph: the structural graph plus its attribute table.
struct AttributedGraph {
  Graph graph;
  AttributeTable attributes;
};

}  // namespace cod

#endif  // COD_GRAPH_ATTRIBUTES_H_
