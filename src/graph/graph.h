// Immutable undirected graph in compressed sparse row (CSR) form.
//
// This is the structural substrate of codlib: communities are node sets over
// a Graph, hierarchies are built on it, and influence processes run over its
// edges. Graphs are built once through GraphBuilder and never mutated, which
// keeps adjacency iteration cache-friendly and makes sharing across modules
// trivial.
//
// Conventions:
//  * Nodes are dense ids 0..NumNodes()-1 (NodeId).
//  * Each undirected edge {u, v} has one dense EdgeId; both adjacency
//    directions reference the same EdgeId, so per-edge annotations (weights,
//    truss numbers, activation coins) are arrays indexed by EdgeId.
//  * Self-loops are rejected; parallel edges are merged (weights summed).

#ifndef COD_GRAPH_GRAPH_H_
#define COD_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"

namespace cod {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

// One adjacency slot: the neighbor and the shared undirected edge id.
struct AdjEntry {
  NodeId to;
  EdgeId edge;
};

class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t NumNodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t NumEdges() const { return edges_.size(); }

  uint32_t Degree(NodeId v) const {
    COD_DCHECK(v < NumNodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const AdjEntry> Neighbors(NodeId v) const {
    COD_DCHECK(v < NumNodes());
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  // Endpoints of edge `e` with Endpoints(e).first < Endpoints(e).second.
  std::pair<NodeId, NodeId> Endpoints(EdgeId e) const {
    COD_DCHECK(e < edges_.size());
    return edges_[e];
  }

  // Edge weight; 1.0 for graphs built without explicit weights.
  double Weight(EdgeId e) const {
    COD_DCHECK(e < edges_.size());
    return weights_.empty() ? 1.0 : weights_[e];
  }
  bool HasWeights() const { return !weights_.empty(); }

  // Returns the id of edge {u, v}, or kInvalidEdge if absent.
  // O(min(deg(u), deg(v))) scan.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  // Total weight (== NumEdges() for unweighted graphs).
  double TotalWeight() const;

 private:
  friend class GraphBuilder;

  std::vector<size_t> offsets_;            // size NumNodes()+1
  std::vector<AdjEntry> adjacency_;        // size 2*NumEdges()
  std::vector<std::pair<NodeId, NodeId>> edges_;  // canonical (min, max)
  std::vector<double> weights_;            // empty, or size NumEdges()
};

// Accumulates edges and produces an immutable Graph. Duplicate edges are
// merged (weights summed); self-loops are dropped.
class GraphBuilder {
 public:
  // `num_nodes` may grow automatically as edges reference larger ids.
  explicit GraphBuilder(size_t num_nodes = 0) : num_nodes_(num_nodes) {}

  void AddEdge(NodeId u, NodeId v, double weight = 1.0);
  void SetNumNodes(size_t n);
  size_t num_nodes() const { return num_nodes_; }

  // Builds the CSR graph. If every accumulated weight equals 1.0 the graph is
  // marked unweighted. The builder is consumed.
  Graph Build() &&;

 private:
  size_t num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> pending_;  // canonical (min, max)
  std::vector<double> pending_weights_;
};

// A materialized induced subgraph together with the mapping back to the
// parent graph's node ids. `graph` uses local ids 0..nodes.size()-1 and
// `to_parent[local]` is the parent id; edge weights are inherited.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_parent;
};

// Builds the subgraph of `g` induced by `nodes` (parent ids; duplicates not
// allowed). Nodes keep the relative order given in `nodes`.
InducedSubgraph BuildInducedSubgraph(const Graph& g,
                                     std::span<const NodeId> nodes);

}  // namespace cod

#endif  // COD_GRAPH_GRAPH_H_
