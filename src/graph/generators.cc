#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <cmath>
#include <string>

#include "graph/connectivity.h"

namespace cod {
namespace {

// Number of leaf blocks for the given shape.
size_t LeafBlockCount(int levels, int fanout) {
  size_t blocks = 1;
  for (int i = 0; i < levels; ++i) blocks *= static_cast<size_t>(fanout);
  return blocks;
}

// Tracks distinct undirected edges so generators hit their edge targets
// exactly instead of losing duplicates to GraphBuilder's merge step.
class EdgeSet {
 public:
  explicit EdgeSet(size_t num_nodes) : n_(num_nodes) {}

  // Returns true if {u, v} was new.
  bool Insert(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return seen_.insert(static_cast<uint64_t>(u) * n_ + v).second;
  }

 private:
  size_t n_;
  std::unordered_set<uint64_t> seen_;
};

}  // namespace

GeneratedGraph HierarchicalPlantedPartition(const HppParams& params,
                                            Rng& rng) {
  COD_CHECK(params.num_nodes >= 2);
  COD_CHECK(params.levels >= 1);
  COD_CHECK(params.fanout >= 2);
  const size_t n = params.num_nodes;
  const size_t leaf_blocks = LeafBlockCount(params.levels, params.fanout);
  COD_CHECK(leaf_blocks <= n);

  // Depth distribution: depth `levels` = inside a leaf block; shallower
  // depths get geometrically less mass; depth 0 = anywhere in the graph.
  std::vector<double> depth_cdf(params.levels + 1);
  {
    // Unnormalized shallow masses decay geometrically away from the leaves:
    // depth levels-1 gets weight `decay`, levels-2 gets decay^2, etc.
    std::vector<double> mass(params.levels + 1);
    mass[params.levels] = params.leaf_fraction;
    double shallow_total = 0.0;
    double factor = 1.0;
    for (int d = params.levels - 1; d >= 0; --d) {
      factor *= params.decay;
      mass[d] = factor;
      shallow_total += factor;
    }
    for (int d = 0; d < params.levels; ++d) {
      mass[d] = mass[d] / shallow_total * (1.0 - params.leaf_fraction);
    }
    double acc = 0.0;
    for (int d = 0; d <= params.levels; ++d) {
      acc += mass[d];
      depth_cdf[d] = acc;
    }
    depth_cdf[params.levels] = 1.0;
  }

  // Nodes are laid out contiguously by leaf block, so the depth-d block of
  // node v is the index range [lo, hi) computed from v's position.
  auto block_range = [&](NodeId v, int depth) -> std::pair<size_t, size_t> {
    size_t blocks = 1;
    for (int i = 0; i < depth; ++i) blocks *= static_cast<size_t>(params.fanout);
    const size_t b = static_cast<size_t>(v) * blocks / n;
    const size_t lo = (b * n + blocks - 1) / blocks;      // ceil
    const size_t hi = ((b + 1) * n + blocks - 1) / blocks;  // ceil
    return {lo, hi};
  };

  GraphBuilder builder(n);
  EdgeSet edges(n);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = params.num_edges * 40 + 1000;
  while (added < params.num_edges && attempts < max_attempts) {
    ++attempts;
    const double r = rng.UniformDouble();
    int depth = 0;
    while (depth < params.levels && r > depth_cdf[depth]) ++depth;
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const auto [lo, hi] = block_range(u, depth);
    if (hi - lo < 2) continue;
    const NodeId v = static_cast<NodeId>(lo + rng.UniformInt(hi - lo));
    if (u == v || !edges.Insert(u, v)) continue;
    builder.AddEdge(u, v);
    ++added;
  }

  GeneratedGraph out;
  out.num_blocks = static_cast<uint32_t>(leaf_blocks);
  out.block.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.block[v] =
        static_cast<uint32_t>(static_cast<size_t>(v) * leaf_blocks / n);
  }
  out.graph = EnsureConnected(std::move(builder).Build(), rng);
  return out;
}

Graph BarabasiAlbert(size_t num_nodes, int edges_per_node, Rng& rng) {
  COD_CHECK(edges_per_node >= 1);
  COD_CHECK(num_nodes > static_cast<size_t>(edges_per_node));
  GraphBuilder builder(num_nodes);
  // Repeated-endpoint list: sampling a uniform element is degree-proportional.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * num_nodes * static_cast<size_t>(edges_per_node));
  const size_t seed = static_cast<size_t>(edges_per_node) + 1;
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = static_cast<NodeId>(seed); v < num_nodes; ++v) {
    for (int i = 0; i < edges_per_node; ++i) {
      const NodeId target = endpoints[rng.UniformInt(endpoints.size())];
      if (target == v) continue;
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return std::move(builder).Build();
}

Graph ErdosRenyi(size_t num_nodes, size_t num_edges, Rng& rng) {
  COD_CHECK(num_nodes >= 2);
  GraphBuilder builder(num_nodes);
  EdgeSet edges(num_nodes);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 40 + 1000;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    if (u == v || !edges.Insert(u, v)) continue;
    builder.AddEdge(u, v);
    ++added;
  }
  return std::move(builder).Build();
}

GeneratedGraph HubbyCommunityGraph(const HubbyParams& params, Rng& rng) {
  COD_CHECK(params.num_blocks >= 1);
  COD_CHECK(params.num_nodes >= params.num_blocks);
  const size_t n = params.num_nodes;

  GraphBuilder builder(n);
  EdgeSet edges(n);
  // Preferential-attachment backbone (dominates the degree distribution).
  {
    Graph backbone = BarabasiAlbert(n, params.backbone_edges_per_node, rng);
    for (EdgeId e = 0; e < backbone.NumEdges(); ++e) {
      const auto [u, v] = backbone.Endpoints(e);
      if (edges.Insert(u, v)) builder.AddEdge(u, v);
    }
  }
  // Intra-block edges on contiguous block ranges.
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = params.extra_block_edges * 40 + 1000;
  while (added < params.extra_block_edges && attempts < max_attempts) {
    ++attempts;
    const size_t b = rng.UniformInt(params.num_blocks);
    const size_t lo = b * n / params.num_blocks;
    const size_t hi = (b + 1) * n / params.num_blocks;
    if (hi - lo < 2) continue;
    const NodeId u = static_cast<NodeId>(lo + rng.UniformInt(hi - lo));
    const NodeId v = static_cast<NodeId>(lo + rng.UniformInt(hi - lo));
    if (u == v || !edges.Insert(u, v)) continue;
    builder.AddEdge(u, v);
    ++added;
  }

  GeneratedGraph out;
  out.num_blocks = static_cast<uint32_t>(params.num_blocks);
  out.block.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.block[v] = static_cast<uint32_t>(static_cast<size_t>(v) *
                                         params.num_blocks / n);
  }
  out.graph = EnsureConnected(std::move(builder).Build(), rng);
  return out;
}

GeneratedGraph CorePeripheryGraph(const CorePeripheryParams& params,
                                  Rng& rng) {
  const size_t n = params.num_nodes;
  const size_t core = params.core_size;
  COD_CHECK(core >= 2);
  COD_CHECK(core < n);
  COD_CHECK(params.num_blocks >= 1);
  COD_CHECK(params.num_blocks <= core);

  GraphBuilder builder(n);
  EdgeSet edges(n);
  GeneratedGraph out;
  out.num_blocks = static_cast<uint32_t>(params.num_blocks);
  out.block.assign(n, 0);
  // Core nodes are 0..core-1, partitioned into contiguous blocks.
  for (NodeId v = 0; v < core; ++v) {
    out.block[v] = static_cast<uint32_t>(static_cast<size_t>(v) *
                                         params.num_blocks / core);
  }

  // Dense-ish random core.
  size_t added = 0;
  size_t attempts = 0;
  size_t max_attempts = params.core_edges * 40 + 1000;
  while (added < params.core_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.UniformInt(core));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(core));
    if (u == v || !edges.Insert(u, v)) continue;
    builder.AddEdge(u, v);
    ++added;
  }

  // Periphery attaches preferentially to the (growing) endpoint list of the
  // core; each periphery node inherits its first target's block.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n);
  for (NodeId v = 0; v < core; ++v) endpoints.push_back(v);
  for (NodeId v = static_cast<NodeId>(core); v < n; ++v) {
    const NodeId target = endpoints[rng.UniformInt(endpoints.size())];
    if (edges.Insert(v, target)) builder.AddEdge(v, target);
    endpoints.push_back(target);
    out.block[v] = out.block[target];
    if (rng.Bernoulli(params.second_edge_prob)) {
      const NodeId target2 = endpoints[rng.UniformInt(endpoints.size())];
      if (target2 != v && edges.Insert(v, target2)) {
        builder.AddEdge(v, target2);
      }
      endpoints.push_back(target2);
    }
  }

  // Optional attribute-coherent periphery structure: random edges between
  // nodes of the same block. Members of a block are scattered, so collect
  // them once.
  if (params.intra_block_edges > 0) {
    std::vector<std::vector<NodeId>> members(params.num_blocks);
    for (NodeId v = 0; v < n; ++v) members[out.block[v]].push_back(v);
    added = 0;
    attempts = 0;
    max_attempts = params.intra_block_edges * 40 + 1000;
    while (added < params.intra_block_edges && attempts < max_attempts) {
      ++attempts;
      const auto& blk = members[rng.UniformInt(params.num_blocks)];
      if (blk.size() < 2) continue;
      const NodeId u = blk[rng.UniformInt(blk.size())];
      const NodeId v = blk[rng.UniformInt(blk.size())];
      if (u == v || !edges.Insert(u, v)) continue;
      builder.AddEdge(u, v);
      ++added;
    }
  }

  out.graph = EnsureConnected(std::move(builder).Build(), rng);
  return out;
}

namespace {

// Bounded discrete power law: P(x) ~ x^{-exponent} on [lo, hi], by inverse
// transform on the continuous approximation.
size_t PowerLawSample(size_t lo, size_t hi, double exponent, Rng& rng) {
  COD_CHECK(lo >= 1);
  COD_CHECK(hi >= lo);
  if (lo == hi) return lo;
  const double a = 1.0 - exponent;
  const double lo_pow = std::pow(static_cast<double>(lo), a);
  const double hi_pow = std::pow(static_cast<double>(hi + 1), a);
  const double u = rng.UniformDouble();
  const double x = std::pow(lo_pow + u * (hi_pow - lo_pow), 1.0 / a);
  return std::min(hi, std::max(lo, static_cast<size_t>(x)));
}

}  // namespace

GeneratedGraph LfrLikeGraph(const LfrParams& params, Rng& rng) {
  const size_t n = params.num_nodes;
  COD_CHECK(n >= 2);
  COD_CHECK(params.min_degree >= 1);
  COD_CHECK(params.max_degree >= params.min_degree);
  COD_CHECK(params.min_community >= 2);
  COD_CHECK(params.max_community >= params.min_community);
  COD_CHECK(params.mu >= 0.0 && params.mu <= 1.0);

  // Degrees and community sizes from bounded power laws.
  std::vector<uint32_t> degree(n);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(PowerLawSample(
        params.min_degree, params.max_degree, params.degree_exponent, rng));
  }
  std::vector<size_t> community_size;
  size_t covered = 0;
  while (covered < n) {
    size_t size = PowerLawSample(params.min_community, params.max_community,
                                 params.community_exponent, rng);
    size = std::min(size, n - covered);
    if (n - covered - size > 0 && n - covered - size < params.min_community) {
      size = n - covered;  // avoid a trailing fragment below the minimum
    }
    community_size.push_back(size);
    covered += size;
  }
  const size_t num_communities = community_size.size();

  GeneratedGraph out;
  out.num_blocks = static_cast<uint32_t>(num_communities);
  out.block.resize(n);
  // Capped first-fit: high-degree nodes first so their intra-degree
  // (1 - mu) * d fits the community they land in.
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });
  std::vector<size_t> remaining = community_size;
  size_t cursor = 0;
  for (NodeId v : order) {
    const size_t need =
        static_cast<size_t>((1.0 - params.mu) * degree[v]) + 1;
    size_t tries = 0;
    while (tries < num_communities &&
           (remaining[cursor] == 0 || community_size[cursor] < need)) {
      cursor = (cursor + 1) % num_communities;
      ++tries;
    }
    // If nothing fits (degree too large for every community), take any
    // community with room.
    if (remaining[cursor] == 0 || community_size[cursor] < need) {
      for (size_t c = 0; c < num_communities; ++c) {
        if (remaining[c] > 0) {
          cursor = c;
          break;
        }
      }
    }
    out.block[v] = static_cast<uint32_t>(cursor);
    --remaining[cursor];
    cursor = (cursor + 1) % num_communities;
  }

  // Stub matching: intra stubs per community, inter stubs global.
  std::vector<std::vector<NodeId>> intra_stubs(num_communities);
  std::vector<NodeId> inter_stubs;
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t intra =
        static_cast<uint32_t>((1.0 - params.mu) * degree[v] + 0.5);
    for (uint32_t i = 0; i < intra; ++i) {
      intra_stubs[out.block[v]].push_back(v);
    }
    for (uint32_t i = intra; i < degree[v]; ++i) inter_stubs.push_back(v);
  }
  GraphBuilder builder(n);
  EdgeSet edges(n);
  auto match = [&](std::vector<NodeId>& stubs) {
    // Fisher-Yates shuffle, then pair consecutive stubs; collisions drop.
    for (size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.UniformInt(i)]);
    }
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v || !edges.Insert(u, v)) continue;
      builder.AddEdge(u, v);
    }
  };
  for (auto& stubs : intra_stubs) match(stubs);
  match(inter_stubs);

  out.graph = EnsureConnected(std::move(builder).Build(), rng);
  return out;
}

Graph EnsureConnected(Graph g, Rng& rng) {
  const Components comps = ConnectedComponents(g);
  if (comps.count <= 1) return g;
  std::vector<size_t> size(comps.count, 0);
  for (uint32_t label : comps.label) ++size[label];
  const uint32_t giant = static_cast<uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());

  std::vector<std::vector<NodeId>> members(comps.count);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    members[comps.label[v]].push_back(v);
  }
  GraphBuilder builder(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    builder.AddEdge(u, v, g.Weight(e));
  }
  for (uint32_t c = 0; c < comps.count; ++c) {
    if (c == giant) continue;
    const NodeId u = members[c][rng.UniformInt(members[c].size())];
    const NodeId v = members[giant][rng.UniformInt(members[giant].size())];
    builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

AttributeTable AssignBlockAttributes(const std::vector<uint32_t>& block,
                                     size_t num_attributes, Rng& rng) {
  COD_CHECK(num_attributes >= 1);
  uint32_t num_blocks = 0;
  for (uint32_t b : block) num_blocks = std::max(num_blocks, b + 1);
  std::vector<AttributeId> block_attr(num_blocks);
  AttributeTableBuilder builder;
  std::vector<AttributeId> vocab(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    vocab[a] = builder.Intern("attr" + std::to_string(a));
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    block_attr[b] = vocab[rng.UniformInt(num_attributes)];
  }
  for (NodeId v = 0; v < block.size(); ++v) {
    builder.Add(v, block_attr[block[v]]);
  }
  return std::move(builder).Build(block.size());
}

AttributeTable AssignCorrelatedAttributes(const std::vector<uint32_t>& block,
                                          size_t vocabulary_size,
                                          double fidelity, double extra_prob,
                                          Rng& rng) {
  COD_CHECK(vocabulary_size >= 1);
  AttributeTableBuilder builder;
  std::vector<AttributeId> vocab(vocabulary_size);
  for (size_t a = 0; a < vocabulary_size; ++a) {
    vocab[a] = builder.Intern("label" + std::to_string(a));
  }
  uint32_t num_blocks = 0;
  for (uint32_t b : block) num_blocks = std::max(num_blocks, b + 1);
  std::vector<AttributeId> dominant(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    dominant[b] = vocab[rng.UniformInt(vocabulary_size)];
  }
  for (NodeId v = 0; v < block.size(); ++v) {
    const AttributeId main = rng.Bernoulli(fidelity)
                                 ? dominant[block[v]]
                                 : vocab[rng.UniformInt(vocabulary_size)];
    builder.Add(v, main);
    if (rng.Bernoulli(extra_prob)) {
      builder.Add(v, vocab[rng.UniformInt(vocabulary_size)]);
    }
  }
  return std::move(builder).Build(block.size());
}

}  // namespace cod
