// Dense node embeddings for non-categorical attributes.
//
// The paper handles categorical attributes directly and states (Sec. II-A)
// that other attribute types — text, numerical — are supported through
// embeddings. This module supplies that pathway: a fixed-dimension embedding
// per node, cosine similarity between endpoints, and (via
// TransformOptions::embeddings in core/global_recluster.h) an
// embedding-similarity edge-weight transform that substitutes for the
// categorical query-attribute boost when attributes live in a vector space.

#ifndef COD_GRAPH_EMBEDDINGS_H_
#define COD_GRAPH_EMBEDDINGS_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace cod {

class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  // Takes row-major data of shape [num_nodes x dimension].
  EmbeddingTable(size_t num_nodes, size_t dimension,
                 std::vector<float> row_major);

  EmbeddingTable(const EmbeddingTable&) = delete;
  EmbeddingTable& operator=(const EmbeddingTable&) = delete;
  EmbeddingTable(EmbeddingTable&&) = default;
  EmbeddingTable& operator=(EmbeddingTable&&) = default;

  size_t NumNodes() const { return dimension_ == 0 ? 0 : data_.size() / dimension_; }
  size_t Dimension() const { return dimension_; }

  std::span<const float> Of(NodeId v) const {
    COD_DCHECK(v < NumNodes());
    return {data_.data() + static_cast<size_t>(v) * dimension_, dimension_};
  }

  // Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
  double Cosine(NodeId u, NodeId v) const;

 private:
  size_t dimension_ = 0;
  std::vector<float> data_;
};

// Synthetic embeddings correlated with block structure: each block gets a
// random unit "topic direction"; node = topic + noise * Gaussian, normalized.
// noise = 0 gives identical embeddings per block; large noise decorrelates.
EmbeddingTable MakeBlockEmbeddings(const std::vector<uint32_t>& block,
                                   size_t dimension, double noise, Rng& rng);

}  // namespace cod

#endif  // COD_GRAPH_EMBEDDINGS_H_
