#include "graph/export.h"

#include <fstream>
#include <vector>

namespace cod {

Status ExportCommunityDot(const Graph& g, std::span<const NodeId> community,
                          NodeId query, const std::string& path,
                          const DotOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");

  std::vector<char> in_community(g.NumNodes(), 0);
  for (NodeId v : community) {
    COD_CHECK(v < g.NumNodes());
    in_community[v] = 1;
  }
  // For large graphs plot only the community's closed neighborhood.
  std::vector<char> keep(g.NumNodes(), 1);
  if (options.neighborhood_only_above > 0 &&
      g.NumNodes() > options.neighborhood_only_above) {
    std::fill(keep.begin(), keep.end(), 0);
    for (NodeId v : community) {
      keep[v] = 1;
      for (const AdjEntry& a : g.Neighbors(v)) keep[a.to] = 1;
    }
  }

  out << "graph community {\n"
      << "  layout=neato;\n  overlap=false;\n"
      << "  node [shape=circle, style=filled, fillcolor=white, "
         "fontsize=10];\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (!keep[v]) continue;
    out << "  n" << v;
    if (v == query) {
      out << " [fillcolor=" << options.query_color << "]";
    } else if (in_community[v]) {
      out << " [fillcolor=" << options.highlight_color << "]";
    }
    out << ";\n";
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (!keep[u] || !keep[v]) continue;
    out << "  n" << u << " -- n" << v;
    if (in_community[u] && in_community[v]) {
      out << " [color=" << options.highlight_color << ", penwidth=2]";
    }
    out << ";\n";
  }
  out << "}\n";
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

Status ExportDendrogramDot(const Dendrogram& dendrogram, uint32_t min_size,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "digraph hierarchy {\n"
      << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  for (CommunityId c = 0; c < dendrogram.NumVertices(); ++c) {
    if (dendrogram.LeafCount(c) < min_size) continue;
    out << "  c" << c << " [label=\"";
    if (dendrogram.IsLeaf(c)) {
      out << "node " << dendrogram.LeafNode(c);
    } else {
      out << "|C|=" << dendrogram.LeafCount(c) << "\\ndep="
          << dendrogram.Depth(c);
    }
    out << "\"];\n";
    const CommunityId parent = dendrogram.Parent(c);
    if (parent != kInvalidCommunity &&
        dendrogram.LeafCount(parent) >= min_size) {
      out << "  c" << parent << " -> c" << c << ";\n";
    }
  }
  out << "}\n";
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace cod
